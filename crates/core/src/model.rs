//! The Resource-Aware Attentional LSTM cost model (RAAL, Sec. IV-D) and
//! its ablations.
//!
//! One [`CostModel`] covers the whole model family of the paper's
//! evaluation via [`ModelConfig`]:
//!
//! | paper name | plan layer | node attention | resource attention | structure embedding |
//! |------------|-----------|----------------|--------------------|---------------------|
//! | RAAL       | LSTM      | yes            | yes                | yes (encoder)       |
//! | NE-LSTM    | LSTM      | yes            | configurable       | **no** (encoder)    |
//! | NA-LSTM    | LSTM      | **no**         | configurable       | yes                 |
//! | RAAC       | **CNN**   | yes            | configurable       | yes                 |
//!
//! The structure-embedding ablation lives in the *encoder*
//! ([`encoding::EncoderConfig::structure`]); everything else is a model
//! flag. Targets are trained in normalised log-space
//! ([`normalize_seconds`]) with MSE loss, as in the paper.

use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
use nn::infer::quant::{self, QuantizedMatrix};
use nn::infer::{self, InferArena};
use nn::layers::{dot_attention, dot_attention_into, Activation, Conv1d, Dense, LstmCell};
use nn::{Graph, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which network models the node sequence (the plan feature layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanLayerKind {
    /// LSTM (RAAL and the LSTM ablations).
    Lstm,
    /// 1-D CNN (the RAAC ablation).
    Cnn,
}

/// Model architecture and ablation flags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Per-node input feature width (from the encoder).
    pub node_dim: usize,
    /// Hidden width of the plan feature layer.
    pub hidden: usize,
    /// Attention latent dimension (the paper's K = 32).
    pub latent_k: usize,
    /// Plan feature layer kind.
    pub plan_layer: PlanLayerKind,
    /// Enable the node-aware attention layer.
    pub node_attention: bool,
    /// Enable the resource-aware attention layer (when disabled the model
    /// never sees the resource vector, as in Table VII's left columns).
    pub resource_attention: bool,
    /// Resource feature width.
    pub resource_dim: usize,
    /// Dense head width.
    pub head_hidden: usize,
    /// Initialisation seed.
    pub seed: u64,
}

impl ModelConfig {
    /// The full RAAL configuration.
    pub fn raal(node_dim: usize) -> Self {
        Self {
            node_dim,
            hidden: 64,
            latent_k: 32,
            plan_layer: PlanLayerKind::Lstm,
            node_attention: true,
            resource_attention: true,
            resource_dim: sparksim::ResourceConfig::NUM_FEATURES,
            head_hidden: 64,
            seed: 0xA11,
        }
    }

    /// NA-LSTM: RAAL without node-aware attention.
    pub fn na_lstm(node_dim: usize) -> Self {
        Self { node_attention: false, ..Self::raal(node_dim) }
    }

    /// RAAC: RAAL with a CNN plan feature layer.
    pub fn raac(node_dim: usize) -> Self {
        Self {
            plan_layer: PlanLayerKind::Cnn,
            ..Self::raal(node_dim)
        }
    }

    /// Disables the resource-aware attention layer (ablation).
    pub fn without_resources(mut self) -> Self {
        self.resource_attention = false;
        self
    }
}

/// Maximum seconds representable by the normalised log target.
pub const MAX_SECONDS: f64 = 7200.0;

/// Maps seconds to the `[0, 1]` log-space training target.
pub fn normalize_seconds(seconds: f64) -> f32 {
    ((1.0 + seconds.clamp(0.0, MAX_SECONDS)).ln() / (1.0 + MAX_SECONDS).ln()) as f32
}

/// Inverse of [`normalize_seconds`]. Outputs are clamped to the label
/// range `[0, MAX_SECONDS]`: an unclamped network extrapolation in log
/// space would denormalise to absurd times and single-handedly wreck
/// raw-space R².
pub fn denormalize_seconds(y: f32) -> f64 {
    ((y as f64).clamp(0.0, 1.0) * (1.0 + MAX_SECONDS).ln()).exp() - 1.0
}

/// A deep cost model instance (RAAL or an ablation).
#[derive(Clone, Serialize, Deserialize)]
pub struct CostModel {
    cfg: ModelConfig,
    store: ParamStore,
    lstm: Option<LstmCell>,
    cnn: Option<Conv1d>,
    /// Node-attention query/key projections (`hidden x K`).
    wq: Option<ParamId>,
    wk: Option<ParamId>,
    /// Resource-attention projections.
    wr: Option<ParamId>,
    wk_res: Option<ParamId>,
    head1: Dense,
    head2: Dense,
    out: Dense,
    /// Label standardisation (set by the trainer): the network regresses
    /// `(normalize_seconds(y) − mean) / std`, which keeps gradients
    /// well-scaled even though the log-targets span a narrow band.
    label_mean: f32,
    label_std: f32,
    /// Process-unique id binding [`PlanContext`]s to the model instance
    /// that produced them. Never serialised: a deserialised model gets a
    /// fresh identity, so contexts cannot be resurrected across a
    /// save/load round trip.
    #[serde(skip, default = "next_model_identity")]
    identity: u64,
    /// Bumped on every mutation that can change predictions
    /// ([`CostModel::store_mut`], [`CostModel::set_label_stats`],
    /// [`CostModel::restore`]); a [`PlanContext`] is only valid for the
    /// exact `(identity, version)` it was computed under.
    #[serde(skip)]
    version: u64,
}

static MODEL_IDENTITY: AtomicU64 = AtomicU64::new(1);

fn next_model_identity() -> u64 {
    // ORDERING: Relaxed — a unique-id counter needs only atomicity of
    // the increment; nothing else is published through this operation.
    MODEL_IDENTITY.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Per-thread scratch pool for the tape-free inference path, so
    /// repeated predictions (selection loops, resource sweeps, batch
    /// shards) stop allocating after their first call.
    static INFER_ARENA: RefCell<InferArena> = RefCell::new(InferArena::new());
}

/// Precomputed resource-independent state of one plan's forward pass.
///
/// The LSTM/CNN hidden states, the node-aware attention pooling and the
/// projected resource-attention keys depend only on the plan, not on the
/// resource vector, so a what-if sweep over resource configurations can
/// compute them once via [`CostModel::plan_context`] and then price each
/// configuration with [`CostModel::predict_with_context`], which costs
/// only the resource attention and the dense head.
///
/// A context is pinned to the exact model state that produced it
/// (instance identity plus mutation version); using it after the model
/// has been mutated, retrained or deserialised panics. Check
/// [`CostModel::context_is_current`] to test freshness explicitly.
#[derive(Debug, Clone)]
pub struct PlanContext {
    model_identity: u64,
    model_version: u64,
    /// Number of plan nodes.
    n: usize,
    /// `n x hidden` plan-layer hidden states, row-major.
    h: Vec<f32>,
    /// `1 x hidden` pooled plan representation (after node attention).
    p: Vec<f32>,
    /// `n x latent_k` projected resource-attention keys (`h @ Wk_res`);
    /// empty when resource attention is disabled.
    keys: Vec<f32>,
    /// Plan-level statistic features.
    stats: Vec<f32>,
    /// Whether the context was computed through the int8 weight tier.
    /// Quantized contexts price with the quantized head and vice versa;
    /// mixing the tiers would silently blend two error budgets, so it
    /// panics instead.
    quantized: bool,
}

impl PlanContext {
    /// Number of nodes in the plan this context was computed for.
    pub fn num_nodes(&self) -> usize {
        self.n
    }
}

impl std::fmt::Debug for CostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostModel")
            .field("cfg", &self.cfg)
            .field("weights", &self.store.num_weights())
            .finish()
    }
}

impl CostModel {
    /// Builds and initialises a model.
    pub fn new(cfg: ModelConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (lstm, cnn) = match cfg.plan_layer {
            PlanLayerKind::Lstm => (
                Some(LstmCell::new(&mut store, &mut rng, "plan.lstm", cfg.node_dim, cfg.hidden)),
                None,
            ),
            PlanLayerKind::Cnn => (
                None,
                Some(Conv1d::new(&mut store, &mut rng, "plan.cnn", cfg.node_dim, cfg.hidden, 3)),
            ),
        };
        let (wq, wk) = if cfg.node_attention {
            (
                Some(store.register(
                    "attn.node.wq",
                    nn::init::xavier_uniform(&mut rng, cfg.hidden, cfg.latent_k),
                )),
                Some(store.register(
                    "attn.node.wk",
                    nn::init::xavier_uniform(&mut rng, cfg.hidden, cfg.latent_k),
                )),
            )
        } else {
            (None, None)
        };
        let (wr, wk_res) = if cfg.resource_attention {
            (
                Some(store.register(
                    "attn.res.wr",
                    nn::init::xavier_uniform(&mut rng, cfg.resource_dim, cfg.latent_k),
                )),
                Some(store.register(
                    "attn.res.wk",
                    nn::init::xavier_uniform(&mut rng, cfg.hidden, cfg.latent_k),
                )),
            )
        } else {
            (None, None)
        };
        // When resource awareness is on, the head sees both the
        // attention context M and the raw normalised resource vector
        // (joined with the "other statistical features", Sec. IV-D's
        // prediction layer).
        let head_in = cfg.hidden
            + if cfg.resource_attention {
                cfg.hidden + cfg.resource_dim
            } else {
                0
            }
            + PLAN_STAT_FEATURES;
        let head1 =
            Dense::new(&mut store, &mut rng, "head.1", head_in, cfg.head_hidden, Activation::Relu);
        let head2 = Dense::new(
            &mut store,
            &mut rng,
            "head.2",
            cfg.head_hidden,
            cfg.head_hidden / 2,
            Activation::Relu,
        );
        let out = Dense::new(
            &mut store,
            &mut rng,
            "head.out",
            cfg.head_hidden / 2,
            1,
            Activation::Identity,
        );
        let model = Self {
            cfg,
            store,
            lstm,
            cnn,
            wq,
            wk,
            wr,
            wk_res,
            head1,
            head2,
            out,
            label_mean: 0.0,
            label_std: 1.0,
            identity: next_model_identity(),
            version: 0,
        };
        // Static shape check before any data can touch the network: a
        // degenerate config (zero widths, resource_dim drift, ...) fails
        // here with a layer-level diagnostic instead of a kernel panic
        // mid-forward.
        if let Err(e) = model.validate_shapes() {
            panic!("invalid model configuration: {e}");
        }
        model
    }

    /// Runs the symbolic shape checker ([`analysis::shape`]) over this
    /// model's architecture, using the *actual* parameter tensor shapes
    /// from the store (not just the config), so inconsistent configs,
    /// tampered checkpoints and out-of-band weight edits are all caught
    /// before a forward pass. Returns the per-stage resolved shapes.
    pub fn validate_shapes(
        &self,
    ) -> Result<analysis::shape::ShapeReport, analysis::shape::ShapeError> {
        use analysis::shape::{ModelShapeSpec, ParamShape, ShapeOp, Stage};
        let cfg = &self.cfg;
        let mut stages = Vec::with_capacity(7);

        match (cfg.plan_layer, &self.lstm, &self.cnn) {
            (PlanLayerKind::Lstm, Some(lstm), _) => stages.push(lstm.shape_stage(&self.store)),
            (PlanLayerKind::Cnn, _, Some(cnn)) => stages.push(cnn.shape_stage(&self.store)),
            _ => {
                return Err(analysis::shape::ShapeError {
                    layer: "plan".into(),
                    message: format!("plan layer {:?} has no registered network", cfg.plan_layer),
                })
            }
        }

        let param = |id: Option<ParamId>,
                     which: &str|
         -> Result<ParamShape, analysis::shape::ShapeError> {
            let id = id.ok_or_else(|| analysis::shape::ShapeError {
                layer: which.rsplit_once('.').map_or(which, |(l, _)| l).to_string(),
                message: format!("parameter '{which}' is enabled in the config but unregistered"),
            })?;
            let (rows, cols) = self.store.value(id).shape();
            Ok(ParamShape::new(self.store.name(id), rows, cols))
        };

        if cfg.node_attention {
            stages.push(Stage::new(
                "attn.node",
                ShapeOp::NodeAttention { latent_k: cfg.latent_k },
                vec![param(self.wq, "attn.node.wq")?, param(self.wk, "attn.node.wk")?],
            ));
        } else {
            stages.push(Stage::new("pool.mean", ShapeOp::MeanPool, vec![]));
        }

        let mut parts = vec![("plan_pool".to_string(), cfg.hidden)];
        if cfg.resource_attention {
            stages.push(Stage::new(
                "attn.res",
                ShapeOp::ResourceAttention {
                    resource_dim: cfg.resource_dim,
                    latent_k: cfg.latent_k,
                    hidden: cfg.hidden,
                },
                vec![param(self.wr, "attn.res.wr")?, param(self.wk_res, "attn.res.wk")?],
            ));
            parts.push(("resource_ctx".to_string(), cfg.hidden));
            parts.push(("resources".to_string(), cfg.resource_dim));
        }
        parts.push(("plan_stats".to_string(), PLAN_STAT_FEATURES));
        stages.push(Stage::new("head.concat", ShapeOp::Concat { parts }, vec![]));
        stages.push(self.head1.shape_stage(&self.store));
        stages.push(self.head2.shape_stage(&self.store));
        stages.push(self.out.shape_stage(&self.store));

        let model = match (cfg.plan_layer, cfg.node_attention, cfg.resource_attention) {
            (PlanLayerKind::Cnn, _, _) => "RAAC",
            (PlanLayerKind::Lstm, false, _) => "NA-LSTM",
            (PlanLayerKind::Lstm, true, false) => "RAAL (no resources)",
            (PlanLayerKind::Lstm, true, true) => "RAAL",
        };
        analysis::shape::check(&ModelShapeSpec {
            model: model.to_string(),
            node_input: cfg.node_dim,
            stages,
        })
    }

    /// Sets the label standardisation constants (normalised-log space).
    /// Called by the trainer with the training set's statistics.
    pub fn set_label_stats(&mut self, mean: f32, std: f32) {
        self.version += 1;
        self.label_mean = mean;
        self.label_std = std.max(1e-4);
    }

    /// Current label standardisation `(mean, std)`.
    pub fn label_stats(&self) -> (f32, f32) {
        (self.label_mean, self.label_std)
    }

    /// The standardised training target for a time in seconds.
    pub fn target(&self, seconds: f64) -> f32 {
        (normalize_seconds(seconds) - self.label_mean) / self.label_std
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Total trainable weights.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Parameter store (for optimizers).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (for optimizers). Conservatively
    /// invalidates every outstanding [`PlanContext`], since the borrow
    /// may be used to change weights.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        self.version += 1;
        &mut self.store
    }

    /// Builds the forward graph for one sample, returning the prediction
    /// in normalised log-space (a `1 x 1` variable).
    pub fn forward(&self, g: &mut Graph, plan: &EncodedPlan, resources: &[f32]) -> Var {
        let n = plan.num_nodes();
        assert!(n > 0, "cannot cost an empty plan");
        let x = g.input(node_matrix(plan));

        // Plan feature layer. The constructor builds exactly the layer
        // matching `cfg.plan_layer` and `validate_shapes` re-checks the
        // pairing on load, so the mismatched arms cannot be reached
        // through any public path.
        let h = match (self.cfg.plan_layer, &self.lstm, &self.cnn) {
            (PlanLayerKind::Lstm, Some(lstm), _) => lstm.forward_seq(g, &self.store, x),
            (PlanLayerKind::Cnn, _, Some(cnn)) => cnn.forward_seq(g, &self.store, x),
            (kind, _, _) => unreachable!("no layer weights for plan_layer {kind:?}"),
        };

        // Node-aware attention (Eq. 8–9): each node attends over its
        // children; the plan representation pools the enriched rows.
        // Missing attention weights with the flag set cannot happen via
        // the constructor; if a hand-edited checkpoint produces it, mean
        // pooling (the attention-off path) is the graceful answer.
        let p = if let (true, Some((wq_id, wk_id))) =
            (self.cfg.node_attention, self.wq.zip(self.wk))
        {
            let wq = g.param(&self.store, wq_id);
            let wk = g.param(&self.store, wk_id);
            let q_all = g.matmul(h, wq);
            let k_all = g.matmul(h, wk);
            let mut reps = Vec::with_capacity(n);
            for i in 0..n {
                let hi = g.slice_rows(h, i, 1);
                let kids = &plan.children[i];
                if kids.is_empty() {
                    reps.push(hi);
                    continue;
                }
                let qi = g.slice_rows(q_all, i, 1);
                let key_rows: Vec<Var> = kids.iter().map(|&c| g.slice_rows(k_all, c, 1)).collect();
                let keys = g.concat_rows(&key_rows);
                let val_rows: Vec<Var> = kids.iter().map(|&c| g.slice_rows(h, c, 1)).collect();
                let values = g.concat_rows(&val_rows);
                let ctx = dot_attention(g, qi, keys, values);
                reps.push(g.add(hi, ctx));
            }
            let enriched = g.concat_rows(&reps);
            g.mean_rows(enriched)
        } else {
            g.mean_rows(h)
        };

        // Resource-aware attention (Eq. 10–11): the resource vector
        // queries the node hidden states.
        let stats = g.input(Tensor::row(&plan.plan_stats));
        let features = if let (true, Some((wr_id, wk_res_id))) =
            (self.cfg.resource_attention, self.wr.zip(self.wk_res))
        {
            assert_eq!(resources.len(), self.cfg.resource_dim, "resource vector width mismatch");
            let rvec = g.input(Tensor::row(resources));
            let wr = g.param(&self.store, wr_id);
            let wk_res = g.param(&self.store, wk_res_id);
            let q = g.matmul(rvec, wr);
            let keys = g.matmul(h, wk_res);
            let m = dot_attention(g, q, keys, h);
            g.concat_cols(&[p, m, rvec, stats])
        } else {
            g.concat_cols(&[p, stats])
        };

        // Prediction head.
        let z = self.head1.forward(g, &self.store, features);
        let z = self.head2.forward(g, &self.store, z);
        self.out.forward(g, &self.store, z)
    }

    /// Builds the training loss graph for one sample (standardised target).
    pub fn loss(&self, g: &mut Graph, plan: &EncodedPlan, resources: &[f32], seconds: f64) -> Var {
        let pred = self.forward(g, plan, resources);
        g.mse_loss(pred, &Tensor::scalar(self.target(seconds)))
    }

    /// Predicts the execution time of a plan in seconds.
    ///
    /// Runs the tape-free inference engine ([`nn::infer`]): the same
    /// arithmetic as [`CostModel::forward`] in the same accumulation
    /// order, without recording autograd state, using SIMD kernels
    /// (FMA matmuls, polynomial `exp` gates) the tape deliberately
    /// avoids. Agreement with the tape within 1e-5 relative error is
    /// enforced by `tests/prop_infer.rs` and the layer unit tests.
    pub fn predict_seconds(&self, plan: &EncodedPlan, resources: &[f32]) -> f64 {
        telemetry::count("infer.predict.single", 1);
        let ctx = self.plan_context(plan);
        let y = self.predict_with_context(&ctx, resources);
        self.recycle_context(ctx);
        y
    }

    /// [`CostModel::predict_seconds`] through the int8 weight tier: every
    /// matmul uses the quantized snapshot `q` (built once by
    /// [`CostModel::quantize`]); biases, activations and the attention
    /// softmax stay f32. Agreement with the f32 fast path within the
    /// quantization error budget is enforced by `tests/quant_infer.rs`.
    ///
    /// # Panics
    /// Panics if `q` is stale (built by a different model instance or
    /// before a mutation).
    pub fn predict_seconds_quant(
        &self,
        plan: &EncodedPlan,
        resources: &[f32],
        q: &QuantizedWeights,
    ) -> f64 {
        telemetry::count("infer.quant.predict", 1);
        let ctx = self.plan_context_impl(plan, Some(q));
        let y = self.predict_with_context_impl(&ctx, resources, Some(q));
        self.recycle_context(ctx);
        y
    }

    /// Reference implementation of [`CostModel::predict_seconds`] on the
    /// autograd tape. Kept as the ground truth the fast path is checked
    /// against; prefer `predict_seconds` everywhere else.
    pub fn predict_seconds_tape(&self, plan: &EncodedPlan, resources: &[f32]) -> f64 {
        let mut g = Graph::new();
        let pred = self.forward(&mut g, plan, resources);
        let y = g.value(pred).item() * self.label_std + self.label_mean;
        denormalize_seconds(y)
    }

    /// Precomputes the resource-independent part of the forward pass for
    /// `plan`: plan-layer hidden states, node-aware attention pooling and
    /// the projected resource-attention keys. See [`PlanContext`].
    pub fn plan_context(&self, plan: &EncodedPlan) -> PlanContext {
        self.plan_context_impl(plan, None)
    }

    /// [`CostModel::plan_context`] through the int8 weight tier; the
    /// returned context is marked quantized and must be priced with
    /// [`CostModel::predict_with_context_quant`].
    pub fn plan_context_quant(&self, plan: &EncodedPlan, q: &QuantizedWeights) -> PlanContext {
        self.plan_context_impl(plan, Some(q))
    }

    /// F32 data of a projection the config guarantees is registered.
    fn proj(&self, id: Option<ParamId>, which: &str) -> &[f32] {
        match id {
            Some(id) => self.store.value(id).data(),
            // PANIC-FREE: construction registers a projection for every
            // feature the config enables (shape::check validates the
            // store), so this arm is unreachable for a built model.
            None => panic!("{which} enabled in the config but unregistered"),
        }
    }

    fn plan_context_impl(&self, plan: &EncodedPlan, qw: Option<&QuantizedWeights>) -> PlanContext {
        let n = plan.num_nodes();
        // PANIC-FREE: deliberate guard — an empty plan is a caller bug;
        // the encoder never produces one.
        assert!(n > 0, "cannot cost an empty plan");
        if let Some(qw) = qw {
            qw.assert_current(self);
        }
        // Cache accounting: hits are derivable downstream as
        // `infer.predict.with_context - infer.plan_context.build`.
        telemetry::count("infer.plan_context.build", 1);
        INFER_ARENA.with(|cell| {
            let arena = &mut *cell.borrow_mut();
            let hidden = self.cfg.hidden;

            // Pack node features row-major (the fast-path node_matrix).
            // PANIC-FREE: n > 0 was asserted above, so row 0 exists.
            let dim = plan.node_features[0].len();
            let mut xs = arena.take(n * dim);
            for (row, feat) in xs.chunks_mut(dim).zip(&plan.node_features) {
                debug_assert_eq!(feat.len(), dim);
                row.copy_from_slice(feat);
            }

            // Plan feature layer.
            let h = {
                let _k = telemetry::kernel_span("infer.plan_layer");
                match self.cfg.plan_layer {
                    PlanLayerKind::Lstm => match &self.lstm {
                        Some(lstm) => lstm.infer_seq_with(
                            &self.store,
                            &xs,
                            n,
                            arena,
                            qw.and_then(|qw| qw.lstm.as_ref()).map(|(wx, wh)| (wx, wh)),
                        ),
                        // PANIC-FREE: the constructor builds the LSTM
                        // cell whenever the config selects Lstm.
                        None => panic!("lstm exists for Lstm kind"),
                    },
                    PlanLayerKind::Cnn => match &self.cnn {
                        Some(cnn) => cnn.infer_seq_with(
                            &self.store,
                            &xs,
                            n,
                            arena,
                            qw.and_then(|qw| qw.cnn.as_ref()),
                        ),
                        // PANIC-FREE: the constructor builds the Conv1d
                        // layer whenever the config selects Cnn.
                        None => panic!("cnn exists for Cnn kind"),
                    },
                }
            };
            arena.give(xs);

            // Node-aware attention and mean pooling. `p[j]` accumulates
            // `rep_i[j] / n` over nodes in order, matching the tape's
            // `mean_rows` exactly.
            let mut p = arena.take(hidden);
            let attn_span = telemetry::kernel_span("infer.node_attention");
            if self.cfg.node_attention {
                let k = self.cfg.latent_k;
                let mut q_all = arena.take(n * k);
                let mut k_all = arena.take(n * k);
                match qw.and_then(|qw| qw.wq.as_ref()) {
                    Some(qm) => quant::matmul_q8_into(&h, n, hidden, qm, &mut q_all),
                    None => infer::matmul_into(
                        &h,
                        n,
                        hidden,
                        self.proj(self.wq, "attn.node.wq"),
                        k,
                        &mut q_all,
                    ),
                }
                match qw.and_then(|qw| qw.wk.as_ref()) {
                    Some(qm) => quant::matmul_q8_into(&h, n, hidden, qm, &mut k_all),
                    None => infer::matmul_into(
                        &h,
                        n,
                        hidden,
                        self.proj(self.wk, "attn.node.wk"),
                        k,
                        &mut k_all,
                    ),
                }
                let mut scores = arena.take(0);
                let mut ctx = arena.take(hidden);
                for i in 0..n {
                    // PANIC-FREE: i < n; h has n * hidden elements and
                    // the encoder emits one children list per node.
                    let hi = &h[i * hidden..(i + 1) * hidden];
                    let kids = &plan.children[i];
                    if kids.is_empty() {
                        for (acc, &v) in p.iter_mut().zip(hi.iter()) {
                            *acc += v / n as f32;
                        }
                        continue;
                    }
                    dot_attention_into(
                        // PANIC-FREE: i < n and q_all has n * k elements.
                        &q_all[i * k..(i + 1) * k],
                        &k_all,
                        &h,
                        k,
                        hidden,
                        Some(kids),
                        0,
                        &mut scores,
                        &mut ctx,
                    );
                    for ((acc, &hv), &cv) in p.iter_mut().zip(hi.iter()).zip(ctx.iter()) {
                        *acc += (hv + cv) / n as f32;
                    }
                }
                arena.give(q_all);
                arena.give(k_all);
                arena.give(scores);
                arena.give(ctx);
            } else {
                for i in 0..n {
                    // PANIC-FREE: i < n and h has n * hidden elements.
                    let hi = &h[i * hidden..(i + 1) * hidden];
                    for (acc, &v) in p.iter_mut().zip(hi.iter()) {
                        *acc += v / n as f32;
                    }
                }
            }
            drop(attn_span);

            // Resource-attention keys (`h @ Wk_res`) are resource
            // independent, so a context amortises them across a sweep.
            let keys = if self.cfg.resource_attention {
                let _k_span = telemetry::kernel_span("infer.resource_keys");
                let k = self.cfg.latent_k;
                let mut keys = arena.take(n * k);
                match qw.and_then(|qw| qw.wk_res.as_ref()) {
                    Some(qm) => quant::matmul_q8_into(&h, n, hidden, qm, &mut keys),
                    None => infer::matmul_into(
                        &h,
                        n,
                        hidden,
                        self.proj(self.wk_res, "attn.res.wk"),
                        k,
                        &mut keys,
                    ),
                }
                keys
            } else {
                // HOT-ALLOC: Vec::new is capacity 0 — no heap allocation.
                Vec::new()
            };

            let mut stats = arena.take(plan.plan_stats.len());
            stats.copy_from_slice(&plan.plan_stats);
            PlanContext {
                model_identity: self.identity,
                model_version: self.version,
                n,
                h,
                p,
                keys,
                stats,
                quantized: qw.is_some(),
            }
        })
    }

    /// Returns a context's scratch buffers to the calling thread's
    /// inference arena. Purely an allocation-traffic optimisation — a
    /// context that is simply dropped is still correct, it just costs
    /// the next `plan_context` call fresh allocations.
    pub fn recycle_context(&self, ctx: PlanContext) {
        INFER_ARENA.with(|cell| {
            let arena = &mut *cell.borrow_mut();
            arena.give(ctx.h);
            arena.give(ctx.p);
            arena.give(ctx.stats);
            if !ctx.keys.is_empty() {
                arena.give(ctx.keys);
            }
        });
    }

    /// Whether `ctx` was computed by this exact model state (same
    /// instance, no intervening mutation, no serde round trip).
    pub fn context_is_current(&self, ctx: &PlanContext) -> bool {
        ctx.model_identity == self.identity && ctx.model_version == self.version
    }

    /// Predicts seconds from a precomputed [`PlanContext`], paying only
    /// the resource-aware attention and the dense head.
    ///
    /// # Panics
    /// Panics if the context is stale — produced by a different model, or
    /// by this model before a mutation ([`CostModel::store_mut`],
    /// [`CostModel::set_label_stats`], [`CostModel::restore`]) or a serde
    /// round trip.
    pub fn predict_with_context(&self, ctx: &PlanContext, resources: &[f32]) -> f64 {
        self.predict_with_context_impl(ctx, resources, None)
    }

    /// [`CostModel::predict_with_context`] through the int8 weight tier.
    ///
    /// # Panics
    /// Panics if the context is stale, if `q` is stale, or if the
    /// context was not built through the quantized tier
    /// ([`CostModel::plan_context_quant`]) — mixing the f32 and int8
    /// tiers inside one prediction would blend two error budgets.
    pub fn predict_with_context_quant(
        &self,
        ctx: &PlanContext,
        resources: &[f32],
        q: &QuantizedWeights,
    ) -> f64 {
        self.predict_with_context_impl(ctx, resources, Some(q))
    }

    fn predict_with_context_impl(
        &self,
        ctx: &PlanContext,
        resources: &[f32],
        qw: Option<&QuantizedWeights>,
    ) -> f64 {
        // PANIC-FREE: deliberate staleness / tier-mismatch guards —
        // pricing a context from another model state would silently
        // return garbage, so these fail loudly instead.
        assert!(
            self.context_is_current(ctx),
            "stale PlanContext: the model was mutated, retrained or deserialised after \
             plan_context() — recompute the context"
        );
        assert_eq!(
            ctx.quantized,
            qw.is_some(),
            "PlanContext tier mismatch: a context must be priced through the same weight \
             tier (f32 or int8) it was built with"
        );
        if let Some(qw) = qw {
            qw.assert_current(self);
        }
        telemetry::count("infer.predict.with_context", 1);
        let _head_span = telemetry::kernel_span("infer.head");
        let y = INFER_ARENA.with(|cell| {
            let arena = &mut *cell.borrow_mut();
            let hidden = self.cfg.hidden;

            // Assemble the head input `[p | m | rvec | stats]` (or
            // `[p | stats]` for resource-blind ablations).
            let mut features = arena.take(self.head1.in_dim);
            let mut at = 0usize;
            // PANIC-FREE: head1.in_dim = hidden (+ hidden + resource_dim
            // when resource attention is on) + stats, so every `at`
            // window below fits; the resource width guard is deliberate.
            features[at..at + hidden].copy_from_slice(&ctx.p);
            at += hidden;
            if self.cfg.resource_attention {
                assert_eq!(
                    resources.len(),
                    self.cfg.resource_dim,
                    "resource vector width mismatch"
                );
                let k = self.cfg.latent_k;
                let mut q = arena.take(k);
                match qw.and_then(|qw| qw.wr.as_ref()) {
                    Some(qm) => {
                        quant::matmul_q8_into(resources, 1, self.cfg.resource_dim, qm, &mut q)
                    }
                    None => infer::matmul_into(
                        resources,
                        1,
                        self.cfg.resource_dim,
                        self.proj(self.wr, "attn.res.wr"),
                        k,
                        &mut q,
                    ),
                }
                let mut scores = arena.take(0);
                {
                    // PANIC-FREE: at = hidden here and in_dim leaves at
                    // least hidden + resource_dim + stats beyond it.
                    let (m_slot, _) = features[at..].split_at_mut(hidden);
                    dot_attention_into(
                        &q,
                        &ctx.keys,
                        &ctx.h,
                        k,
                        hidden,
                        None,
                        ctx.n,
                        &mut scores,
                        m_slot,
                    );
                }
                at += hidden;
                arena.give(q);
                arena.give(scores);
                // PANIC-FREE: same in_dim layout argument as above.
                features[at..at + self.cfg.resource_dim].copy_from_slice(resources);
                at += self.cfg.resource_dim;
            }
            // PANIC-FREE: the stats block is the final in_dim segment
            // (debug-asserted below).
            features[at..at + ctx.stats.len()].copy_from_slice(&ctx.stats);
            debug_assert_eq!(at + ctx.stats.len(), self.head1.in_dim);

            // Prediction head.
            let z1 = self
                .head1
                .infer_with(&self.store, &features, 1, arena, qw.map(|q| &q.head1));
            let z2 = self
                .head2
                .infer_with(&self.store, &z1, 1, arena, qw.map(|q| &q.head2));
            let out = self.out.infer_with(&self.store, &z2, 1, arena, qw.map(|q| &q.out));
            // PANIC-FREE: the output layer has out_dim = 1, so out[0]
            // exists (shape::check pins the head shapes).
            let y = out[0] * self.label_std + self.label_mean;
            arena.give(features);
            arena.give(z1);
            arena.give(z2);
            arena.give(out);
            y
        });
        denormalize_seconds(y)
    }

    /// Predicts a batch of `(plan, resources)` pairs, sharding the work
    /// across `std::thread::available_parallelism()` scoped threads (the
    /// same pattern the trainer uses for batch gradients). Each shard
    /// runs through [`CostModel::predict_packed`], so within a shard the
    /// K candidate plans share one batched head matmul per layer, and
    /// each thread reuses its own inference arena — large batches run
    /// allocation-free after warmup.
    pub fn predict_batch(&self, items: &[(&EncodedPlan, &[f32])]) -> Vec<f64> {
        self.predict_batch_with(items, None)
    }

    pub(crate) fn predict_batch_with(
        &self,
        items: &[(&EncodedPlan, &[f32])],
        qw: Option<&QuantizedWeights>,
    ) -> Vec<f64> {
        if items.is_empty() {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(items.len());
        if threads <= 1 {
            return self.predict_packed_with(items, qw);
        }
        let chunk = items.len().div_ceil(threads);
        let mut out = vec![0.0f64; items.len()];
        std::thread::scope(|scope| {
            for (slots, shard) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
                scope.spawn(move || {
                    let got = self.predict_packed_with(shard, qw);
                    slots.copy_from_slice(&got);
                });
            }
        });
        out
    }

    /// Scores K candidate plans as *one* batched matmul per head layer
    /// (cross-plan GEMM packing) on the calling thread: the per-plan
    /// contexts and attention are computed item by item (they have
    /// ragged shapes), then the K head-input feature rows are packed
    /// into a single `K x head_in` matrix so `head1`/`head2`/`out` each
    /// run once instead of K times. Every head matmul computes its rows
    /// independently in the same accumulation order as the `rows = 1`
    /// kernel, so each result is bit-identical to
    /// [`CostModel::predict_seconds`] on the same item.
    pub fn predict_packed(&self, items: &[(&EncodedPlan, &[f32])]) -> Vec<f64> {
        self.predict_packed_with(items, None)
    }

    pub(crate) fn predict_packed_with(
        &self,
        items: &[(&EncodedPlan, &[f32])],
        qw: Option<&QuantizedWeights>,
    ) -> Vec<f64> {
        if items.is_empty() {
            // HOT-ALLOC: Vec::new is capacity 0 — no heap allocation.
            return Vec::new();
        }
        telemetry::count("infer.predict.packed", items.len() as u64);
        let kcount = items.len();
        let hidden = self.cfg.hidden;
        let head_in = self.head1.in_dim;
        // HOT-ALLOC: one K-element spine per batch; the contexts inside
        // draw their buffers from the arena and are recycled below.
        let ctxs: Vec<PlanContext> = items
            .iter()
            .map(|(plan, _)| self.plan_context_impl(plan, qw))
            .collect();
        let ys = INFER_ARENA.with(|cell| {
            let arena = &mut *cell.borrow_mut();
            let mut features = arena.take(kcount * head_in);
            if self.cfg.resource_attention {
                let k = self.cfg.latent_k;
                let rdim = self.cfg.resource_dim;
                // Pack the K resource vectors and project them with one
                // matmul (`K x rdim @ rdim x k`); each row's accumulation
                // is independent, so row i equals the single-item `q`.
                let mut rvecs = arena.take(kcount * rdim);
                for (row, (_, res)) in rvecs.chunks_mut(rdim).zip(items.iter()) {
                    // PANIC-FREE: deliberate width guard per item.
                    assert_eq!(res.len(), rdim, "resource vector width mismatch");
                    row.copy_from_slice(res);
                }
                let mut qs = arena.take(kcount * k);
                match qw.and_then(|qw| qw.wr.as_ref()) {
                    Some(qm) => quant::matmul_q8_into(&rvecs, kcount, rdim, qm, &mut qs),
                    None => infer::matmul_into(
                        &rvecs,
                        kcount,
                        rdim,
                        self.proj(self.wr, "attn.res.wr"),
                        k,
                        &mut qs,
                    ),
                }
                let mut scores = arena.take(0);
                for (i, ctx) in ctxs.iter().enumerate() {
                    // PANIC-FREE: i < kcount; features has kcount rows of
                    // head_in = 2*hidden + rdim + stats, so every segment
                    // offset below stays inside frow, and qs has
                    // kcount * k elements.
                    let frow = &mut features[i * head_in..(i + 1) * head_in];
                    frow[..hidden].copy_from_slice(&ctx.p);
                    {
                        let (m_slot, _) = frow[hidden..].split_at_mut(hidden);
                        dot_attention_into(
                            &qs[i * k..(i + 1) * k],
                            &ctx.keys,
                            &ctx.h,
                            k,
                            hidden,
                            None,
                            ctx.n,
                            &mut scores,
                            m_slot,
                        );
                    }
                    // PANIC-FREE: same head_in layout argument as above.
                    frow[2 * hidden..2 * hidden + rdim].copy_from_slice(items[i].1);
                    frow[2 * hidden + rdim..].copy_from_slice(&ctx.stats);
                }
                arena.give(rvecs);
                arena.give(qs);
                arena.give(scores);
            } else {
                for (i, ctx) in ctxs.iter().enumerate() {
                    // PANIC-FREE: i < kcount; head_in = hidden + stats in
                    // the resource-blind layout.
                    let frow = &mut features[i * head_in..(i + 1) * head_in];
                    frow[..hidden].copy_from_slice(&ctx.p);
                    frow[hidden..].copy_from_slice(&ctx.stats);
                }
            }

            // One batched matmul per head layer for all K plans.
            let _head_span = telemetry::kernel_span("infer.head");
            let z1 =
                self.head1
                    .infer_with(&self.store, &features, kcount, arena, qw.map(|q| &q.head1));
            let z2 = self
                .head2
                .infer_with(&self.store, &z1, kcount, arena, qw.map(|q| &q.head2));
            let out = self
                .out
                .infer_with(&self.store, &z2, kcount, arena, qw.map(|q| &q.out));
            // HOT-ALLOC: the K-element result vector handed to the
            // caller; all intermediate buffers come from the arena.
            let ys: Vec<f64> = out
                .iter()
                .map(|&o| denormalize_seconds(o * self.label_std + self.label_mean))
                .collect();
            arena.give(features);
            arena.give(z1);
            arena.give(z2);
            arena.give(out);
            ys
        });
        for ctx in ctxs {
            self.recycle_context(ctx);
        }
        ys
    }

    /// Restores internal optimizer buffers after deserialisation.
    pub fn restore(&mut self) {
        self.version += 1;
        self.store.restore_state();
    }

    /// Snapshots every matmul weight to int8 with per-row scales
    /// ([`nn::infer::quant::QuantizedMatrix`]). Called once at freeze /
    /// checkpoint-load time — never in the prediction hot loop. Biases
    /// and label statistics stay f32 and are read from the model at
    /// predict time, so the snapshot holds only the code matrices.
    pub fn quantize(&self) -> QuantizedWeights {
        let q8 = |id: Option<ParamId>| -> Option<QuantizedMatrix> {
            id.map(|id| {
                let t = self.store.value(id);
                let (rows, cols) = t.shape();
                QuantizedMatrix::quantize(t.data(), rows, cols)
            })
        };
        QuantizedWeights {
            model_identity: self.identity,
            model_version: self.version,
            lstm: self.lstm.as_ref().map(|l| l.quantize_weights(&self.store)),
            cnn: self.cnn.as_ref().map(|c| c.quantize_weights(&self.store)),
            wq: q8(self.wq),
            wk: q8(self.wk),
            wr: q8(self.wr),
            wk_res: q8(self.wk_res),
            head1: self.head1.quantize_weights(&self.store),
            head2: self.head2.quantize_weights(&self.store),
            out: self.out.quantize_weights(&self.store),
        }
    }

    /// Runs the static shape checker over an int8 snapshot: every
    /// quantized matrix must mirror the architecture's declared f32
    /// shape and carry exactly one scale per row. Catches a snapshot
    /// taken from a different architecture (or corrupted in transit)
    /// before a kernel can read out of bounds.
    pub fn validate_quantized(
        &self,
        q: &QuantizedWeights,
    ) -> Result<(), analysis::shape::ShapeError> {
        if q.model_identity != self.identity || q.model_version != self.version {
            return Err(analysis::shape::ShapeError {
                layer: "quant".into(),
                message: "stale QuantizedWeights: snapshot was built by a different model \
                          instance or before a mutation"
                    .into(),
            });
        }
        let cfg = &self.cfg;
        let mut pairs: Vec<(analysis::shape::ParamShape, analysis::shape::QuantParamShape)> =
            Vec::new();
        let mut push = |name: &str, rows: usize, cols: usize, qm: &QuantizedMatrix| {
            pairs.push((
                analysis::shape::ParamShape::new(name, rows, cols),
                analysis::shape::QuantParamShape {
                    name: name.to_string(),
                    rows: qm.rows(),
                    cols: qm.cols(),
                    scales: qm.scales().len(),
                },
            ));
        };
        if let Some((wx, wh)) = &q.lstm {
            push("plan.lstm.wx", cfg.node_dim, 4 * cfg.hidden, wx);
            push("plan.lstm.wh", cfg.hidden, 4 * cfg.hidden, wh);
        }
        if let Some(cw) = &q.cnn {
            push("plan.cnn.w", 3 * cfg.node_dim, cfg.hidden, cw);
        }
        if let Some(qm) = &q.wq {
            push("attn.node.wq", cfg.hidden, cfg.latent_k, qm);
        }
        if let Some(qm) = &q.wk {
            push("attn.node.wk", cfg.hidden, cfg.latent_k, qm);
        }
        if let Some(qm) = &q.wr {
            push("attn.res.wr", cfg.resource_dim, cfg.latent_k, qm);
        }
        if let Some(qm) = &q.wk_res {
            push("attn.res.wk", cfg.hidden, cfg.latent_k, qm);
        }
        push("head.1.w", self.head1.in_dim, self.head1.out_dim, &q.head1);
        push("head.2.w", self.head2.in_dim, self.head2.out_dim, &q.head2);
        push("head.out.w", self.out.in_dim, self.out.out_dim, &q.out);
        for (src, mirror) in &pairs {
            analysis::shape::check_quant_mirror(src, mirror)?;
        }
        Ok(())
    }
}

/// Int8 snapshot of every matmul weight of a [`CostModel`], built once
/// by [`CostModel::quantize`]. Like a [`PlanContext`], a snapshot is
/// pinned to the exact `(identity, version)` model state that produced
/// it and panics when used after a mutation or against a different
/// instance.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    model_identity: u64,
    model_version: u64,
    lstm: Option<(QuantizedMatrix, QuantizedMatrix)>,
    cnn: Option<QuantizedMatrix>,
    wq: Option<QuantizedMatrix>,
    wk: Option<QuantizedMatrix>,
    wr: Option<QuantizedMatrix>,
    wk_res: Option<QuantizedMatrix>,
    head1: QuantizedMatrix,
    head2: QuantizedMatrix,
    out: QuantizedMatrix,
}

impl QuantizedWeights {
    /// Total bytes held by the int8 code matrices (excluding scales) —
    /// the footprint a replica shares instead of copying.
    pub fn code_bytes(&self) -> usize {
        let m = |qm: &QuantizedMatrix| qm.rows() * qm.cols();
        let mut total = m(&self.head1) + m(&self.head2) + m(&self.out);
        if let Some((wx, wh)) = &self.lstm {
            total += m(wx) + m(wh);
        }
        for qm in [&self.cnn, &self.wq, &self.wk, &self.wr, &self.wk_res]
            .into_iter()
            .flatten()
        {
            total += m(qm);
        }
        total
    }

    fn assert_current(&self, model: &CostModel) {
        // PANIC-FREE: deliberate staleness guard — pricing through a
        // snapshot of another model state would silently blend weights.
        assert!(
            self.model_identity == model.identity && self.model_version == model.version,
            "stale QuantizedWeights: the model was mutated, retrained or deserialised after \
             quantize() — rebuild the snapshot"
        );
    }
}

/// An immutable, `Arc`-shared inference handle: one [`CostModel`] plus
/// its int8 weight snapshot, frozen together at construction.
///
/// `Clone` is a reference-count bump — every replica shares the same
/// f32 weights *and* the same quantized codes, so N serving replicas
/// hold one copy of the model, not N. The handle is `Send + Sync`
/// (asserted at compile time in the tests): the inner model is never
/// mutated after freezing, and the per-thread scratch arenas keep
/// concurrent predictions independent.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    inner: Arc<FrozenInner>,
}

#[derive(Debug)]
struct FrozenInner {
    model: CostModel,
    quant: QuantizedWeights,
}

impl FrozenModel {
    /// Quantizes and freezes a model. Runs the quantized shape check
    /// ([`CostModel::validate_quantized`]) so a malformed snapshot can
    /// never reach a kernel.
    ///
    /// # Panics
    /// Panics if the freshly built snapshot fails the shape check
    /// (which indicates a bug in the architecture wiring, not bad data).
    pub fn freeze(model: CostModel) -> Self {
        let quant = model.quantize();
        if let Err(e) = model.validate_quantized(&quant) {
            panic!("quantized weight snapshot failed the shape check: {e}");
        }
        Self { inner: Arc::new(FrozenInner { model, quant }) }
    }

    /// The shared underlying model (read-only).
    pub fn model(&self) -> &CostModel {
        &self.inner.model
    }

    /// The shared int8 weight snapshot.
    pub fn quantized_weights(&self) -> &QuantizedWeights {
        &self.inner.quant
    }

    /// Number of live handles sharing this model's weights.
    pub fn replicas(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Quantized-tier prediction (the serving default).
    pub fn predict_seconds(&self, plan: &EncodedPlan, resources: &[f32]) -> f64 {
        self.inner
            .model
            .predict_seconds_quant(plan, resources, &self.inner.quant)
    }

    /// F32 fast-path prediction through the shared model.
    pub fn predict_seconds_f32(&self, plan: &EncodedPlan, resources: &[f32]) -> f64 {
        self.inner.model.predict_seconds(plan, resources)
    }

    /// Quantized-tier [`CostModel::plan_context`] for what-if sweeps.
    pub fn plan_context(&self, plan: &EncodedPlan) -> PlanContext {
        self.inner.model.plan_context_quant(plan, &self.inner.quant)
    }

    /// Prices a quantized context against one resource configuration.
    pub fn predict_with_context(&self, ctx: &PlanContext, resources: &[f32]) -> f64 {
        self.inner
            .model
            .predict_with_context_quant(ctx, resources, &self.inner.quant)
    }

    /// Returns a context's buffers to the thread-local arena.
    pub fn recycle_context(&self, ctx: PlanContext) {
        self.inner.model.recycle_context(ctx);
    }

    /// Quantized cross-plan packed scoring on the calling thread
    /// (see [`CostModel::predict_packed`]).
    pub fn predict_packed(&self, items: &[(&EncodedPlan, &[f32])]) -> Vec<f64> {
        self.inner.model.predict_packed_with(items, Some(&self.inner.quant))
    }

    /// Quantized threaded batch prediction (packed per shard).
    pub fn predict_batch(&self, items: &[(&EncodedPlan, &[f32])]) -> Vec<f64> {
        self.inner.model.predict_batch_with(items, Some(&self.inner.quant))
    }
}

/// Snapshot of the calling thread's inference-arena statistics — the
/// thread-local scratch pool behind every tape-free prediction on this
/// thread. Lets callers (and the serving tests) assert that a warmed
/// prediction loop has genuinely stopped allocating.
pub fn thread_arena_stats() -> nn::ArenaStats {
    INFER_ARENA.with(|cell| cell.borrow().stats())
}

fn node_matrix(plan: &EncodedPlan) -> Tensor {
    let n = plan.num_nodes();
    let dim = plan.node_features[0].len();
    let mut data = Vec::with_capacity(n * dim);
    for row in &plan.node_features {
        debug_assert_eq!(row.len(), dim);
        data.extend_from_slice(row);
    }
    Tensor::from_vec(n, dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_plan(n: usize, dim: usize) -> EncodedPlan {
        let node_features = (0..n)
            .map(|i| (0..dim).map(|d| ((i * 7 + d) % 13) as f32 / 13.0).collect())
            .collect();
        // Chain, except the root is a join-like node with two children —
        // single-child softmax is constant and would starve the
        // node-attention weights of gradient.
        let children: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                if i == 0 {
                    vec![]
                } else if i == n - 1 && n >= 3 {
                    vec![i - 1, i - 2]
                } else {
                    vec![i - 1]
                }
            })
            .collect();
        EncodedPlan {
            node_features,
            children,
            plan_stats: vec![0.1; PLAN_STAT_FEATURES],
        }
    }

    fn resources() -> Vec<f32> {
        vec![1.0, 1.0, 0.25, 0.5, 0.25, 0.9, 0.8]
    }

    #[test]
    fn all_variants_run_forward() {
        let dim = 20;
        let plan = toy_plan(5, dim);
        for cfg in [
            ModelConfig::raal(dim),
            ModelConfig::na_lstm(dim),
            ModelConfig::raac(dim),
            ModelConfig::raal(dim).without_resources(),
        ] {
            let model = CostModel::new(cfg);
            let s = model.predict_seconds(&plan, &resources());
            assert!(s.is_finite() && s >= 0.0, "{s}");
        }
    }

    #[test]
    fn normalisation_round_trips() {
        for s in [0.0, 0.5, 10.0, 100.0, 3600.0] {
            let y = normalize_seconds(s);
            assert!((denormalize_seconds(y) - s).abs() < s.max(1.0) * 1e-3);
        }
        assert!(normalize_seconds(1e9) <= 1.0);
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let dim = 12;
        let plan = toy_plan(4, dim);
        let model = CostModel::new(ModelConfig::raal(dim));
        let mut store = model.store().clone();
        let mut g = Graph::new();
        let loss = model.loss(&mut g, &plan, &resources(), 25.0);
        let grads = g.backward(loss);
        g.accumulate_grads(&grads, &mut store, 1.0);
        let dead: Vec<String> = store
            .ids()
            .filter(|&id| store.grad(id).norm() == 0.0)
            .map(|id| store.name(id).to_string())
            .collect();
        assert!(dead.is_empty(), "parameters with zero gradient: {dead:?}");
    }

    #[test]
    fn gradcheck_full_raal() {
        // Small dims keep the finite-difference sweep fast.
        let dim = 6;
        let plan = toy_plan(3, dim);
        let cfg = ModelConfig {
            hidden: 5,
            latent_k: 4,
            head_hidden: 6,
            ..ModelConfig::raal(dim)
        };
        let model = CostModel::new(cfg);
        let mut store = model.store().clone();
        let res = resources();
        nn::gradcheck::assert_gradients_close(
            &mut store,
            move |g, s| {
                // Rebind the model's forward against the perturbed store.
                let mut m = model.clone();
                *m.store_mut() = s.clone();
                m.loss(g, &plan, &res, 10.0)
            },
            5e-3,
            3e-2,
        );
    }

    #[test]
    fn resource_blind_model_ignores_resources() {
        let dim = 10;
        let plan = toy_plan(4, dim);
        let model = CostModel::new(ModelConfig::raal(dim).without_resources());
        let a = model.predict_seconds(&plan, &resources());
        let b = model.predict_seconds(&plan, &[0.0; 7]);
        assert_eq!(a, b, "without resource attention, resources are unused");
    }

    #[test]
    fn resource_aware_model_reacts_to_resources() {
        let dim = 10;
        let plan = toy_plan(4, dim);
        let model = CostModel::new(ModelConfig::raal(dim));
        let a = model.predict_seconds(&plan, &resources());
        let b = model.predict_seconds(&plan, &[0.01; 7]);
        assert_ne!(a, b);
    }

    #[test]
    fn fast_path_matches_tape_on_all_variants() {
        let dim = 20;
        for cfg in [
            ModelConfig::raal(dim),
            ModelConfig::na_lstm(dim),
            ModelConfig::raac(dim),
            ModelConfig::raal(dim).without_resources(),
        ] {
            let model = CostModel::new(cfg);
            for n in [1, 2, 5, 9] {
                let plan = toy_plan(n, dim);
                let fast = model.predict_seconds(&plan, &resources());
                let tape = model.predict_seconds_tape(&plan, &resources());
                let rel = (fast - tape).abs() / tape.abs().max(1e-6);
                assert!(
                    rel <= 1e-5,
                    "n={n} cfg={:?}: fast {fast} vs tape {tape} (rel {rel:.2e})",
                    model.config()
                );
            }
        }
    }

    #[test]
    fn context_sweep_matches_direct_prediction() {
        let dim = 14;
        let plan = toy_plan(6, dim);
        let model = CostModel::new(ModelConfig::raal(dim));
        let ctx = model.plan_context(&plan);
        for scale in [0.1f32, 0.5, 1.0] {
            let res: Vec<f32> = resources().iter().map(|r| r * scale).collect();
            assert_eq!(model.predict_with_context(&ctx, &res), model.predict_seconds(&plan, &res));
        }
    }

    #[test]
    fn predict_batch_matches_per_item() {
        let dim = 12;
        let model = CostModel::new(ModelConfig::raal(dim));
        let plans: Vec<EncodedPlan> = (1..14).map(|n| toy_plan(n, dim)).collect();
        let res = resources();
        let items: Vec<(&EncodedPlan, &[f32])> =
            plans.iter().map(|p| (p, res.as_slice())).collect();
        let batch = model.predict_batch(&items);
        for (got, plan) in batch.iter().zip(&plans) {
            assert_eq!(*got, model.predict_seconds(plan, &res));
        }
        assert!(model.predict_batch(&[]).is_empty());
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let dim = 8;
        let plan = toy_plan(3, dim);
        let model = CostModel::new(ModelConfig::raal(dim));
        let json = serde_json::to_string(&model).unwrap();
        let mut back: CostModel = serde_json::from_str(&json).unwrap();
        back.restore();
        assert_eq!(
            model.predict_seconds(&plan, &resources()),
            back.predict_seconds(&plan, &resources())
        );
    }
}
