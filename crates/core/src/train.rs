//! Training loop: mini-batch Adam on the normalised-log MSE objective,
//! with multi-threaded gradient computation (samples in a batch are
//! independent define-by-run graphs).

use crate::metrics::EvalSet;
use crate::model::{normalize_seconds, CostModel};
use encoding::plan_encoder::Sample;
use nn::optim::Adam;
use nn::{Graph, ParamStore};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Worker threads for within-batch parallelism (0 = all cores).
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 15,
            lr: 1e-3,
            batch_size: 32,
            clip_norm: 5.0,
            seed: 7,
            threads: 0,
        }
    }
}

impl TrainConfig {
    /// Worker-thread count after resolving `threads == 0` ("all cores")
    /// against the machine. Falls back to 1 when core discovery fails —
    /// a degraded-but-correct single-worker run beats guessing a count
    /// the container may not have.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Loss trajectory and timing of one training run.
#[derive(Debug, Clone)]
pub struct TrainHistory {
    /// Mean training loss per epoch (normalised-log MSE).
    pub epoch_losses: Vec<f64>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
}

impl TrainHistory {
    /// Final epoch loss.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().unwrap_or(&f64::NAN)
    }
}

/// Trains a model in place on the given samples.
pub fn train(model: &mut CostModel, samples: &[Sample], cfg: &TrainConfig) -> TrainHistory {
    assert!(!samples.is_empty(), "training set must be non-empty");
    let threads = cfg.resolved_threads();
    let mut run = telemetry::span("train.run");
    run.record("epochs", cfg.epochs as u64);
    run.record("batch_size", cfg.batch_size as u64);
    run.record("lr", cfg.lr);
    run.record("threads", threads as u64);
    run.record("samples", samples.len() as u64);
    telemetry::manifest(&[("train_threads", telemetry::Value::UInt(threads as u64))]);
    // Standardise the regression target over the training set: the
    // normalised-log labels live in a narrow band, and z-scoring them
    // speeds convergence dramatically without changing the objective.
    {
        let ys: Vec<f32> = samples.iter().map(|s| normalize_seconds(s.seconds)).collect();
        let mean = ys.iter().sum::<f32>() / ys.len() as f32;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;
        model.set_label_stats(mean, var.sqrt());
    }
    let mut adam = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let epoch_start_us = telemetry::clock_us();
        // Linear learning-rate decay to 20% of the initial rate.
        let frac = epoch as f32 / cfg.epochs.max(1) as f32;
        adam.lr = cfg.lr * (1.0 - 0.8 * frac);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut workers_used = 0usize;
        let mut batches = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            let batch_start_ns = telemetry::clock_ns();
            let weight = 1.0 / batch.len() as f32;
            let (batch_loss, grads) = batch_gradients(model, samples, batch, weight, threads);
            epoch_loss += batch_loss * batch.len() as f64;
            workers_used += grads.len();
            batches += 1;
            merge_grads(model.store_mut(), &grads);
            model.store_mut().clip_grad_norm(cfg.clip_norm);
            adam.step(model.store_mut());
            telemetry::observe("train.batch_ns", telemetry::clock_ns() - batch_start_ns);
        }
        epoch_losses.push(epoch_loss / samples.len() as f64);
        // Live registry view of convergence: a stalled or diverging run
        // shows in `raal_train_loss` without waiting for shutdown.
        telemetry::gauge("train.loss", epoch_loss / samples.len() as f64);
        if telemetry::enabled() {
            // Utilisation = workers that actually received samples,
            // relative to the configured pool, averaged over batches.
            let util = workers_used as f64 / (batches.max(1) * threads) as f64;
            telemetry::event(
                "train.epoch",
                &[
                    ("epoch", telemetry::Value::UInt(epoch as u64)),
                    ("loss", telemetry::Value::F64(epoch_loss / samples.len() as f64)),
                    ("lr", telemetry::Value::F64(adam.lr as f64)),
                    ("grad_norm", telemetry::Value::F64(model.store().grad_norm() as f64)),
                    ("worker_utilization", telemetry::Value::F64(util)),
                    ("epoch_us", telemetry::Value::UInt(telemetry::clock_us() - epoch_start_us)),
                ],
            );
        }
    }
    run.record("final_loss", *epoch_losses.last().unwrap_or(&f64::NAN));
    TrainHistory { epoch_losses, train_seconds: run.elapsed_seconds() }
}

/// Computes accumulated gradients for a batch, parallelised over samples.
/// Returns (mean loss, per-thread gradient stores).
fn batch_gradients(
    model: &CostModel,
    samples: &[Sample],
    batch: &[usize],
    weight: f32,
    threads: usize,
) -> (f64, Vec<ParamStore>) {
    let chunk = batch.len().div_ceil(threads.max(1));
    let mut stores = Vec::new();
    let mut total_loss = 0.0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|ids| {
                scope.spawn(move || {
                    let mut local = model.store().clone();
                    local.zero_grads();
                    let mut loss_sum = 0.0f64;
                    for &i in ids {
                        let s = &samples[i];
                        let mut g = Graph::new();
                        let loss = model.loss(&mut g, &s.plan, &s.resources, s.seconds);
                        loss_sum += g.value(loss).item() as f64;
                        let grads = g.backward(loss);
                        g.accumulate_grads(&grads, &mut local, weight);
                    }
                    (loss_sum, local)
                })
            })
            .collect();
        for h in handles {
            // Re-raise a worker panic with its original payload instead
            // of a generic join failure.
            let (loss_sum, local) = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            total_loss += loss_sum;
            stores.push(local);
        }
    });
    (total_loss / batch.len() as f64, stores)
}

/// Adds the gradients of worker stores into the model's store.
fn merge_grads(store: &mut ParamStore, workers: &[ParamStore]) {
    store.zero_grads();
    let ids: Vec<_> = store.ids().collect();
    for w in workers {
        for &id in &ids {
            store.grad_mut(id).axpy(1.0, w.grad(id));
        }
    }
}

/// Evaluates a model on a test set, pairing actual and predicted seconds.
pub fn evaluate(model: &CostModel, samples: &[Sample]) -> EvalSet {
    let mut set = EvalSet::new();
    for s in samples {
        set.push(s.seconds, model.predict_seconds(&s.plan, &s.resources));
    }
    set
}

/// The transform under which training MSE is measured (and which the
/// paper-style MSE tables should use).
pub fn training_transform(seconds: f64) -> f64 {
    normalize_seconds(seconds) as f64
}

/// Splits samples into (train, test) by shuffling with a seed — the
/// paper's 80/20 split.
pub fn train_test_split(
    samples: Vec<Sample>,
    train_frac: f64,
    seed: u64,
) -> (Vec<Sample>, Vec<Sample>) {
    let mut samples = samples;
    let mut rng = StdRng::seed_from_u64(seed);
    samples.shuffle(&mut rng);
    let cut = ((samples.len() as f64) * train_frac).round() as usize;
    let test = samples.split_off(cut.min(samples.len()));
    (samples, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};

    /// A synthetic task: cost = f(mean of node features, resource[2]).
    fn synthetic_samples(n: usize) -> Vec<Sample> {
        let dim = 10;
        (0..n)
            .map(|i| {
                let v = (i % 17) as f32 / 17.0;
                let r = (i % 5) as f32 / 5.0;
                let node_features = vec![vec![v; dim]; 4];
                let children = vec![vec![], vec![0], vec![1], vec![2]];
                let mut resources = vec![0.5f32; 7];
                resources[2] = r;
                let seconds = (20.0 * v as f64 + 30.0 * (1.0 - r as f64)) + 5.0;
                Sample {
                    plan: EncodedPlan {
                        node_features,
                        children,
                        plan_stats: vec![v; PLAN_STAT_FEATURES],
                    },
                    resources,
                    seconds,
                }
            })
            .collect()
    }

    #[test]
    fn loss_decreases_on_learnable_task() {
        let samples = synthetic_samples(64);
        let mut model = CostModel::new(ModelConfig {
            hidden: 16,
            latent_k: 8,
            head_hidden: 16,
            ..ModelConfig::raal(10)
        });
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            threads: 2,
            ..Default::default()
        };
        let history = train(&mut model, &samples, &cfg);
        assert_eq!(history.epoch_losses.len(), 20);
        let first = history.epoch_losses[0];
        let last = history.final_loss();
        assert!(last < first * 0.5, "loss should halve: first={first} last={last}");
    }

    #[test]
    fn evaluation_tracks_learned_function() {
        let samples = synthetic_samples(96);
        let (train_set, test_set) = train_test_split(samples, 0.8, 1);
        assert!((test_set.len() as i64 - 19).abs() <= 1);
        let mut model = CostModel::new(ModelConfig {
            hidden: 16,
            latent_k: 8,
            head_hidden: 16,
            ..ModelConfig::raal(10)
        });
        train(
            &mut model,
            &train_set,
            &TrainConfig {
                epochs: 30,
                batch_size: 16,
                threads: 2,
                ..Default::default()
            },
        );
        let eval = evaluate(&model, &test_set);
        assert!(eval.correlation() > 0.8, "cor={}", eval.correlation());
    }

    #[test]
    fn training_is_deterministic_across_thread_counts() {
        // Gradients are merged additively, so 1 vs 2 threads must agree
        // (up to float addition order inside a parameter, which is fixed).
        let samples = synthetic_samples(16);
        let build = || {
            CostModel::new(ModelConfig {
                hidden: 8,
                latent_k: 4,
                head_hidden: 8,
                ..ModelConfig::raal(10)
            })
        };
        let mut m1 = build();
        let mut m2 = build();
        let cfg1 = TrainConfig {
            epochs: 2,
            batch_size: 8,
            threads: 1,
            ..Default::default()
        };
        let cfg2 = TrainConfig {
            epochs: 2,
            batch_size: 8,
            threads: 2,
            ..Default::default()
        };
        let h1 = train(&mut m1, &samples, &cfg1);
        let h2 = train(&mut m2, &samples, &cfg2);
        assert!((h1.final_loss() - h2.final_loss()).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        let mut model = CostModel::new(ModelConfig::raal(10));
        train(&mut model, &[], &TrainConfig::default());
    }
}
