//! Data collection (the paper's Sec. IV-B "Data Collection" phase):
//! generate queries → enumerate candidate plans → execute each plan once
//! for true metrics → observe it under many resource states (averaged over
//! three runs, as in Sec. III) → train word2vec on the plan-statement
//! corpus → encode labelled samples.

use crate::model::MAX_SECONDS;
use encoding::plan_encoder::{PlanEncoder, Sample};
use encoding::tokenizer::plan_sentences;
use encoding::word2vec::{train as train_w2v, W2vConfig};
use encoding::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparksim::exec::NodeMetrics;
use sparksim::resource::ResourceGrid;
use sparksim::{Engine, PhysicalPlan, ResourceConfig};
use workloads::querygen::{generate_queries, QueryGenConfig};
use workloads::FkGraph;

/// Collection parameters.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Queries to generate.
    pub num_queries: usize,
    /// Resource states observed per plan.
    pub resource_states_per_plan: usize,
    /// Simulated runs averaged per observation (the paper uses 3).
    pub runs_per_observation: usize,
    /// Query-generation knobs.
    pub querygen: QueryGenConfig,
    /// Resource grid to sample from.
    pub grid: ResourceGrid,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        Self {
            num_queries: 200,
            resource_states_per_plan: 3,
            runs_per_observation: 3,
            querygen: QueryGenConfig::default(),
            grid: ResourceGrid::default(),
            seed: 0xC0DE,
            threads: 0,
        }
    }
}

/// One plan with its observations.
#[derive(Debug, Clone)]
pub struct PlanRun {
    /// Index of the originating query.
    pub query_idx: usize,
    /// Index among the query's candidate plans (0 = Catalyst default).
    pub plan_idx: usize,
    /// The physical plan.
    pub plan: PhysicalPlan,
    /// True per-node execution metrics.
    pub metrics: Vec<NodeMetrics>,
    /// Observed (resources, mean seconds) pairs.
    pub observations: Vec<(ResourceConfig, f64)>,
}

/// A full collected dataset, pre-encoding.
#[derive(Debug)]
pub struct Collection {
    /// All plan runs.
    pub plan_runs: Vec<PlanRun>,
    /// Queries that failed to plan or execute (kept for accounting).
    pub skipped_queries: usize,
}

impl Collection {
    /// Total number of (plan, resources, time) records.
    pub fn num_records(&self) -> usize {
        self.plan_runs.iter().map(|p| p.observations.len()).sum()
    }

    /// Trains word2vec on every plan statement in the collection and
    /// builds the sample encoder.
    pub fn build_encoder(&self, w2v_cfg: &W2vConfig, enc_cfg: EncoderConfig) -> PlanEncoder {
        let mut corpus = Vec::new();
        for run in &self.plan_runs {
            corpus.extend(plan_sentences(&run.plan));
        }
        PlanEncoder::new(train_w2v(&corpus, w2v_cfg), enc_cfg)
    }

    /// Encodes every observation into a training sample.
    pub fn encode(&self, encoder: &PlanEncoder, engine: &Engine) -> Vec<Sample> {
        let cluster = engine.simulator().cluster();
        let mut out = Vec::with_capacity(self.num_records());
        for run in &self.plan_runs {
            let encoded = encoder.encode(&run.plan);
            for (res, seconds) in &run.observations {
                out.push(Sample {
                    plan: encoded.clone(),
                    resources: res.feature_vector(cluster),
                    seconds: *seconds,
                });
            }
        }
        out
    }
}

/// Runs the full collection pipeline over a workload.
pub fn collect(engine: &Engine, graph: &FkGraph, cfg: &CollectionConfig) -> Collection {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let queries = generate_queries(graph, &cfg.querygen, cfg.num_queries, &mut rng);
    collect_queries(engine, &queries, cfg)
}

/// Runs collection over an explicit query list.
pub fn collect_queries(engine: &Engine, queries: &[String], cfg: &CollectionConfig) -> Collection {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    };
    let chunk = queries.len().div_ceil(threads.max(1)).max(1);
    let mut plan_runs = Vec::new();
    let mut skipped = 0usize;

    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .enumerate()
            .map(|(chunk_idx, qs)| {
                scope.spawn(move || {
                    let mut local_runs = Vec::new();
                    let mut local_skipped = 0usize;
                    for (qi, sql) in qs.iter().enumerate() {
                        let query_idx = chunk_idx * chunk + qi;
                        match collect_one(engine, sql, query_idx, cfg) {
                            Some(runs) => local_runs.extend(runs),
                            None => local_skipped += 1,
                        }
                    }
                    (local_runs, local_skipped)
                })
            })
            .collect();
        for h in handles {
            // Re-raise a worker panic with its original payload instead
            // of a generic join failure.
            let (runs, s) = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            plan_runs.extend(runs);
            skipped += s;
        }
    });

    // Deterministic order regardless of thread interleaving.
    plan_runs.sort_by_key(|r| (r.query_idx, r.plan_idx));
    Collection { plan_runs, skipped_queries: skipped }
}

fn collect_one(
    engine: &Engine,
    sql: &str,
    query_idx: usize,
    cfg: &CollectionConfig,
) -> Option<Vec<PlanRun>> {
    let plans = engine.plan_candidates(sql).ok()?;
    let cluster = engine.simulator().cluster().clone();
    // Per-query deterministic RNG for resource sampling.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (query_idx as u64).wrapping_mul(0x9E37));
    let mut runs = Vec::with_capacity(plans.len());
    for (plan_idx, plan) in plans.into_iter().enumerate() {
        // Execute once: metrics are resource-independent.
        let result = match engine.execute_plan(&plan) {
            Ok(r) => r,
            Err(_) => return None, // runaway query: skip it entirely
        };
        let mut observations = Vec::with_capacity(cfg.resource_states_per_plan);
        for obs in 0..cfg.resource_states_per_plan {
            let res = cfg.grid.sample(&cluster, &mut rng);
            let mut total = 0.0;
            for run in 0..cfg.runs_per_observation.max(1) {
                let seed = cfg
                    .seed
                    .wrapping_add(query_idx as u64 * 1_000_003)
                    .wrapping_add(plan_idx as u64 * 7919)
                    .wrapping_add(obs as u64 * 97)
                    .wrapping_add(run as u64);
                total += engine.simulator().simulate(&plan, &result.metrics, &res, seed);
            }
            let mean = total / cfg.runs_per_observation.max(1) as f64;
            // Failed placements (1h sentinel) are real observations the
            // model should learn, but cap to the label range.
            observations.push((res, mean.min(MAX_SECONDS)));
        }
        runs.push(PlanRun {
            query_idx,
            plan_idx,
            plan,
            metrics: result.metrics,
            observations,
        });
    }
    Some(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::imdb;

    fn tiny_engine() -> (Engine, FkGraph, f64) {
        let data = imdb::generate(&imdb::ImdbConfig { title_rows: 400, seed: 3 });
        let scale = data.simulated_scale();
        let graph = data.graph.clone();
        let sim_cfg = sparksim::SimulatorConfig {
            data_scale: scale,
            ..sparksim::SimulatorConfig::default()
        };
        let engine = Engine::with_options(
            data.catalog,
            sparksim::plan::planner::PlannerOptions::default(),
            sparksim::ClusterConfig::default(),
            sim_cfg,
        );
        (engine, graph, scale)
    }

    #[test]
    fn collects_and_encodes_samples() {
        let (engine, graph, _) = tiny_engine();
        let cfg = CollectionConfig {
            num_queries: 8,
            resource_states_per_plan: 2,
            runs_per_observation: 2,
            threads: 2,
            ..Default::default()
        };
        let coll = collect(&engine, &graph, &cfg);
        assert!(coll.num_records() > 0);
        let encoder = coll.build_encoder(
            &W2vConfig { dim: 8, epochs: 1, ..Default::default() },
            EncoderConfig::default(),
        );
        let samples = coll.encode(&encoder, &engine);
        assert_eq!(samples.len(), coll.num_records());
        for s in &samples {
            assert!(s.seconds > 0.0 && s.seconds.is_finite());
            assert_eq!(s.resources.len(), ResourceConfig::NUM_FEATURES);
            assert!(!s.plan.node_features.is_empty());
        }
    }

    #[test]
    fn collection_is_deterministic() {
        let (engine, graph, _) = tiny_engine();
        let cfg = CollectionConfig {
            num_queries: 4,
            resource_states_per_plan: 2,
            runs_per_observation: 1,
            threads: 2,
            ..Default::default()
        };
        let a = collect(&engine, &graph, &cfg);
        let b = collect(&engine, &graph, &cfg);
        assert_eq!(a.num_records(), b.num_records());
        for (ra, rb) in a.plan_runs.iter().zip(&b.plan_runs) {
            assert_eq!(ra.query_idx, rb.query_idx);
            for ((resa, ta), (resb, tb)) in ra.observations.iter().zip(&rb.observations) {
                assert_eq!(resa, resb);
                assert_eq!(ta, tb);
            }
        }
    }

    #[test]
    fn same_plan_varies_across_resources() {
        let (engine, graph, _) = tiny_engine();
        let cfg = CollectionConfig {
            num_queries: 6,
            resource_states_per_plan: 4,
            runs_per_observation: 1,
            threads: 1,
            ..Default::default()
        };
        let coll = collect(&engine, &graph, &cfg);
        // At least one plan should show a time spread across resources.
        let spread = coll.plan_runs.iter().any(|r| {
            let times: Vec<f64> = r.observations.iter().map(|(_, t)| *t).collect();
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = times.iter().cloned().fold(0.0f64, f64::max);
            max > min * 1.2
        });
        assert!(spread, "resources should move execution time");
    }
}
