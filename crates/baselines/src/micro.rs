//! Micro-model baseline — per-operator learned cost models in the style
//! of CLEO/Microlearner (the paper's Sec. II "query optimization for big
//! data processing"): instead of one end-to-end deep network, fit small
//! per-operator models over optimizer statistics and combine them
//! additively.
//!
//! Concretely: each plan is featurised as, per operator type, the summed
//! `log(1+est_rows)` and `log(1+est_bytes)` of its nodes, concatenated
//! with the normalised resource vector and a bias; a closed-form ridge
//! regression maps that to the normalised-log cost. This sits between
//! GPSJ (no learning) and RAAL (deep, structure-aware): it learns
//! calibration but cannot see plan structure or node interactions.

use raal::model::{denormalize_seconds, normalize_seconds};
use serde::{Deserialize, Serialize};
use sparksim::plan::physical::PhysicalPlan;
use sparksim::resource::{ClusterConfig, ResourceConfig};

/// Operator vocabulary (must cover every `PhysicalOp::name`).
const OPS: [&str; 12] = [
    "FileScan",
    "Filter",
    "Project",
    "ExchangeHashPartition",
    "ExchangeSinglePartition",
    "BroadcastExchange",
    "Sort",
    "SortMergeJoin",
    "BroadcastHashJoin",
    "ShuffledHashJoin",
    "HashAggregate",
    "CollectLimit",
];

/// Feature width: 2 per operator type + resources + bias.
pub const NUM_FEATURES: usize = 2 * OPS.len() + ResourceConfig::NUM_FEATURES + 1;

/// Ridge strength that generalises well for this featurisation. The
/// features are unstandardised log-scale sums of O(1) magnitude over a few
/// hundred training rows, so an O(1) penalty is the right scale; weaker
/// penalties (1e-4 and below) overfit the operator columns and lose to the
/// hand-tuned GPSJ formulas on held-out queries.
pub const DEFAULT_RIDGE: f64 = 1.0;

/// A fitted micro-model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroModel {
    weights: Vec<f64>,
    /// Ridge regularisation used at fit time.
    pub ridge: f64,
}

/// Featurises one (plan, resources) pair.
pub fn features(plan: &PhysicalPlan, res: &ResourceConfig, cluster: &ClusterConfig) -> Vec<f64> {
    let mut f = vec![0.0f64; NUM_FEATURES];
    for node in plan.nodes() {
        if let Some(i) = OPS.iter().position(|&o| o == node.op.name()) {
            f[2 * i] += (1.0 + node.est_rows.max(0.0)).ln() / 30.0;
            f[2 * i + 1] += (1.0 + node.est_bytes.max(0.0)).ln() / 40.0;
        }
    }
    for (j, &r) in res.feature_vector(cluster).iter().enumerate() {
        f[2 * OPS.len() + j] = r as f64;
    }
    *f.last_mut().expect("bias slot") = 1.0;
    f
}

impl MicroModel {
    /// Fits the model on (plan, resources, seconds) records by solving the
    /// ridge-regularised normal equations.
    pub fn fit<'a>(
        records: impl Iterator<Item = (&'a PhysicalPlan, &'a ResourceConfig, f64)>,
        cluster: &ClusterConfig,
        ridge: f64,
    ) -> Self {
        let d = NUM_FEATURES;
        let mut xtx = vec![0.0f64; d * d];
        let mut xty = vec![0.0f64; d];
        let mut n = 0usize;
        for (plan, res, seconds) in records {
            let x = features(plan, res, cluster);
            let y = normalize_seconds(seconds) as f64;
            for i in 0..d {
                xty[i] += x[i] * y;
                for j in 0..d {
                    xtx[i * d + j] += x[i] * x[j];
                }
            }
            n += 1;
        }
        assert!(n > 0, "micro-model fit requires at least one record");
        for i in 0..d {
            xtx[i * d + i] += ridge;
        }
        let weights = solve(&mut xtx, &mut xty, d);
        Self { weights, ridge }
    }

    /// Predicts seconds for a plan under resources.
    pub fn predict_seconds(
        &self,
        plan: &PhysicalPlan,
        res: &ResourceConfig,
        cluster: &ClusterConfig,
    ) -> f64 {
        let x = features(plan, res, cluster);
        let y: f64 = x.iter().zip(&self.weights).map(|(a, b)| a * b).sum();
        denormalize_seconds(y as f32)
    }
}

/// Gaussian elimination with partial pivoting (the system is tiny).
fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        let mut pivot = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        for c in 0..n {
            a.swap(col * n + c, pivot * n + c);
        }
        b.swap(col, pivot);
        let p = a[col * n + col];
        if p.abs() < 1e-12 {
            continue;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = a[r * n + col] / p;
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    (0..n)
        .map(|i| {
            let p = a[i * n + i];
            if p.abs() < 1e-12 {
                0.0
            } else {
                b[i] / p
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::plan::physical::{AggMode, PhysicalOp};
    use sparksim::plan::spec::AggSpec;
    use sparksim::schema::ColumnRef;
    use sparksim::sql::ast::AggFunc;

    fn plan(rows: f64) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let scan = p.add(
            PhysicalOp::FileScan {
                binding: "t".into(),
                table: "t".into(),
                output: vec![ColumnRef::new("t", "id")],
                pushed_filter: None,
            },
            vec![],
            rows,
            rows * 8.0,
        );
        let aggs = vec![AggSpec { func: AggFunc::Count, arg: None }];
        let pa = p.add(
            PhysicalOp::HashAggregate {
                mode: AggMode::Partial,
                group_by: vec![],
                aggs: aggs.clone(),
            },
            vec![scan],
            1.0,
            8.0,
        );
        let ex = p.add(PhysicalOp::ExchangeSingle, vec![pa], 1.0, 8.0);
        p.add(
            PhysicalOp::HashAggregate { mode: AggMode::Final, group_by: vec![], aggs },
            vec![ex],
            1.0,
            8.0,
        );
        p
    }

    fn res() -> ResourceConfig {
        ResourceConfig::default_for(&ClusterConfig::default())
    }

    #[test]
    fn features_cover_all_operators_and_bias() {
        let f = features(&plan(100.0), &res(), &ClusterConfig::default());
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(*f.last().unwrap(), 1.0);
        // FileScan rows/bytes slots populated.
        assert!(f[0] > 0.0 && f[1] > 0.0);
    }

    #[test]
    fn fits_a_monotone_cost() {
        // Synthetic: cost grows with scan rows.
        let cluster = ClusterConfig::default();
        let plans: Vec<PhysicalPlan> = (1..40).map(|i| plan(i as f64 * 1e5)).collect();
        let r = res();
        let records: Vec<(&PhysicalPlan, &ResourceConfig, f64)> = plans
            .iter()
            .map(|p| (p, &r, 2.0 + p.node(0).est_rows / 1e5))
            .collect();
        let model = MicroModel::fit(records.iter().map(|&(p, r, s)| (p, r, s)), &cluster, 1e-6);
        let small = model.predict_seconds(&plan(1e5), &r, &cluster);
        let large = model.predict_seconds(&plan(35e5), &r, &cluster);
        assert!(large > small, "{small} vs {large}");
        // Interpolation should be in the right ballpark.
        let mid = model.predict_seconds(&plan(20e5), &r, &cluster);
        assert!((mid - 22.0).abs() < 8.0, "mid prediction {mid}");
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn fit_rejects_empty() {
        let _ = MicroModel::fit(std::iter::empty(), &ClusterConfig::default(), 1e-6);
    }
}
