//! TLSTM baseline — the tree-structured LSTM cost estimator of Sun & Li
//! (the paper's relational-database state of the art, Sec. V-A).
//!
//! Each plan operator gets an LSTM unit; a unit's recurrent state is the
//! sum of its children's states (child-sum Tree-LSTM), so information
//! flows bottom-up through the plan tree instead of along the paper's
//! linearised node sequence. The root state feeds a dense head. TLSTM has
//! **no resource pathway** — exactly why it trails RAAL when resources
//! vary (Tables V and VII).

use encoding::plan_encoder::{EncodedPlan, PLAN_STAT_FEATURES};
use nn::layers::{Activation, Dense, LstmCell};
use nn::{Graph, ParamStore, Tensor, Var};
use raal::model::{denormalize_seconds, normalize_seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// TLSTM hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TlstmConfig {
    /// Per-node input feature width.
    pub node_dim: usize,
    /// Hidden/cell width of the tree-LSTM units.
    pub hidden: usize,
    /// Dense head width.
    pub head_hidden: usize,
    /// Initialisation seed.
    pub seed: u64,
}

impl TlstmConfig {
    /// Defaults matching the RAAL comparison setting.
    pub fn new(node_dim: usize) -> Self {
        Self { node_dim, hidden: 64, head_hidden: 64, seed: 0x715 }
    }
}

/// The TLSTM cost model.
#[derive(Clone, Serialize, Deserialize)]
pub struct TlstmModel {
    cfg: TlstmConfig,
    store: ParamStore,
    cell: LstmCell,
    head1: Dense,
    out: Dense,
    /// Label standardisation (see `raal::CostModel`): set by the trainer.
    label_mean: f32,
    label_std: f32,
}

impl std::fmt::Debug for TlstmModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlstmModel")
            .field("cfg", &self.cfg)
            .field("weights", &self.store.num_weights())
            .finish()
    }
}

impl TlstmModel {
    /// Builds and initialises the model.
    pub fn new(cfg: TlstmConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let cell = LstmCell::new(&mut store, &mut rng, "tlstm.cell", cfg.node_dim, cfg.hidden);
        let head1 = Dense::new(
            &mut store,
            &mut rng,
            "tlstm.head",
            cfg.hidden + PLAN_STAT_FEATURES,
            cfg.head_hidden,
            Activation::Relu,
        );
        let out =
            Dense::new(&mut store, &mut rng, "tlstm.out", cfg.head_hidden, 1, Activation::Identity);
        Self {
            cfg,
            store,
            cell,
            head1,
            out,
            label_mean: 0.0,
            label_std: 1.0,
        }
    }

    /// Sets label standardisation constants (normalised-log space).
    pub fn set_label_stats(&mut self, mean: f32, std: f32) {
        self.label_mean = mean;
        self.label_std = std.max(1e-4);
    }

    /// Total trainable weights.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Forward pass: bottom-up tree recurrence, normalised-log output.
    pub fn forward(&self, g: &mut Graph, plan: &EncodedPlan) -> Var {
        let n = plan.num_nodes();
        assert!(n > 0, "cannot cost an empty plan");
        let x = g.input(node_matrix(plan));
        let bound = self.cell.bind(g, &self.store);
        let zero = g.input(Tensor::zeros(1, self.cfg.hidden));
        let mut hs: Vec<Var> = Vec::with_capacity(n);
        let mut cs: Vec<Var> = Vec::with_capacity(n);
        for i in 0..n {
            // Child-sum recurrent state.
            let (h_in, c_in) = match plan.children[i].as_slice() {
                [] => (zero, zero),
                [one] => (hs[*one], cs[*one]),
                kids => {
                    let mut h = hs[kids[0]];
                    let mut c = cs[kids[0]];
                    for &k in &kids[1..] {
                        h = g.add(h, hs[k]);
                        c = g.add(c, cs[k]);
                    }
                    (h, c)
                }
            };
            let x_i = g.slice_rows(x, i, 1);
            let (h, c) = bound.step(g, x_i, h_in, c_in);
            hs.push(h);
            cs.push(c);
        }
        let root = hs[n - 1];
        let stats = g.input(Tensor::row(&plan.plan_stats));
        let features = g.concat_cols(&[root, stats]);
        let z = self.head1.forward(g, &self.store, features);
        self.out.forward(g, &self.store, z)
    }

    /// Training loss for one sample (standardised target).
    pub fn loss(&self, g: &mut Graph, plan: &EncodedPlan, seconds: f64) -> Var {
        let pred = self.forward(g, plan);
        let target = (normalize_seconds(seconds) - self.label_mean) / self.label_std;
        g.mse_loss(pred, &Tensor::scalar(target))
    }

    /// Predicted execution time in seconds (resources are ignored by
    /// design — TLSTM is resource-blind).
    pub fn predict_seconds(&self, plan: &EncodedPlan) -> f64 {
        let mut g = Graph::new();
        let pred = self.forward(&mut g, plan);
        let y = g.value(pred).item() * self.label_std + self.label_mean;
        denormalize_seconds(y)
    }
}

fn node_matrix(plan: &EncodedPlan) -> Tensor {
    let n = plan.num_nodes();
    let dim = plan.node_features[0].len();
    let mut data = Vec::with_capacity(n * dim);
    for row in &plan.node_features {
        data.extend_from_slice(row);
    }
    Tensor::from_vec(n, dim, data)
}

/// Trains a TLSTM model with mini-batch Adam (the raal trainer's loop,
/// specialised to a resource-free model).
pub fn train_tlstm(
    model: &mut TlstmModel,
    samples: &[encoding::plan_encoder::Sample],
    cfg: &raal::TrainConfig,
) -> raal::TrainHistory {
    use nn::optim::Adam;
    use rand::seq::SliceRandom;
    assert!(!samples.is_empty(), "training set must be non-empty");
    let mut run = telemetry::span("baselines.train_tlstm");
    run.record("epochs", cfg.epochs as u64);
    run.record("samples", samples.len() as u64);
    {
        let ys: Vec<f32> = samples.iter().map(|s| normalize_seconds(s.seconds)).collect();
        let mean = ys.iter().sum::<f32>() / ys.len() as f32;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f32>() / ys.len() as f32;
        model.set_label_stats(mean, var.sqrt());
    }
    let mut adam = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        adam.lr = cfg.lr * (1.0 - 0.8 * epoch as f32 / cfg.epochs.max(1) as f32);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(cfg.batch_size) {
            let weight = 1.0 / batch.len() as f32;
            model.store_mut().zero_grads();
            let mut grads_store = model.store().clone();
            grads_store.zero_grads();
            let mut batch_loss = 0.0;
            for &i in batch {
                let s = &samples[i];
                let mut g = Graph::new();
                let loss = model.loss(&mut g, &s.plan, s.seconds);
                batch_loss += g.value(loss).item() as f64;
                let grads = g.backward(loss);
                g.accumulate_grads(&grads, &mut grads_store, weight);
            }
            let ids: Vec<_> = grads_store.ids().collect();
            for id in ids {
                let delta = grads_store.grad(id).clone();
                model.store_mut().grad_mut(id).axpy(1.0, &delta);
            }
            model.store_mut().clip_grad_norm(cfg.clip_norm);
            adam.step(model.store_mut());
            epoch_loss += batch_loss;
        }
        epoch_losses.push(epoch_loss / samples.len() as f64);
    }
    raal::TrainHistory { epoch_losses, train_seconds: run.elapsed_seconds() }
}

/// Evaluates a TLSTM model against actual costs.
pub fn evaluate_tlstm(
    model: &TlstmModel,
    samples: &[encoding::plan_encoder::Sample],
) -> raal::EvalSet {
    let mut set = raal::EvalSet::new();
    for s in samples {
        set.push(s.seconds, model.predict_seconds(&s.plan));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoding::plan_encoder::Sample;

    fn toy_plan(v: f32) -> EncodedPlan {
        EncodedPlan {
            node_features: vec![vec![v; 10], vec![v * 0.5; 10], vec![v * 0.25; 10]],
            children: vec![vec![], vec![], vec![0, 1]],
            plan_stats: vec![v; PLAN_STAT_FEATURES],
        }
    }

    #[test]
    fn forward_handles_branching_trees() {
        let model = TlstmModel::new(TlstmConfig::new(10));
        let s = model.predict_seconds(&toy_plan(0.5));
        assert!(s.is_finite() && s >= 0.0);
    }

    #[test]
    fn gradients_reach_cell_weights() {
        let model = TlstmModel::new(TlstmConfig::new(10));
        let mut store = model.store().clone();
        let mut g = Graph::new();
        let loss = model.loss(&mut g, &toy_plan(0.7), 30.0);
        let grads = g.backward(loss);
        g.accumulate_grads(&grads, &mut store, 1.0);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(store.grad(id).norm() > 0.0, "dead param {}", store.name(id));
        }
    }

    #[test]
    fn learns_a_simple_mapping() {
        let samples: Vec<Sample> = (0..48)
            .map(|i| {
                let v = (i % 12) as f32 / 12.0;
                Sample {
                    plan: toy_plan(v),
                    resources: vec![0.5; 7],
                    seconds: 10.0 + 60.0 * v as f64,
                }
            })
            .collect();
        let mut model = TlstmModel::new(TlstmConfig {
            hidden: 12,
            head_hidden: 12,
            ..TlstmConfig::new(10)
        });
        let history = train_tlstm(
            &mut model,
            &samples,
            &raal::TrainConfig {
                epochs: 40,
                lr: 3e-3,
                batch_size: 16,
                ..Default::default()
            },
        );
        assert!(
            history.final_loss() < history.epoch_losses[0] * 0.5,
            "losses: {:?}",
            history.epoch_losses
        );
        let eval = evaluate_tlstm(&model, &samples);
        assert!(eval.correlation() > 0.7, "cor={}", eval.correlation());
    }

    #[test]
    fn predictions_ignore_resources_by_construction() {
        // The API simply has no resource input; this documents the fact.
        let model = TlstmModel::new(TlstmConfig::new(10));
        let p = toy_plan(0.3);
        assert_eq!(model.predict_seconds(&p), model.predict_seconds(&p));
    }
}
