//! GPSJ baseline — the hand-crafted analytical cost model for Spark SQL of
//! Baldacci & Golfarelli (the paper's Spark-side state of the art).
//!
//! GPSJ estimates the time of a Generalised-Projection/Selection/Join plan
//! from **database statistics and cluster parameters only**: per-stage
//! disk-read, CPU, shuffle-write/read and broadcast terms computed from the
//! optimizer's *estimated* row counts, divided by the configured
//! throughputs and task slots. It knows nothing about spill, GC, page
//! cache, placement, skew or estimation error — the paper's Sec. V-B(3)
//! attributes its large errors to exactly that: over-reliance on
//! statistics and rigid hand-built formulas.

use serde::{Deserialize, Serialize};
use sparksim::plan::physical::{PhysicalOp, PhysicalPlan};
use sparksim::resource::ResourceConfig;

const MB: f64 = 1024.0 * 1024.0;

/// Calibration constants of the analytical model (the "significant
/// person-hours of engineering" the paper mentions — these are the knobs a
/// human would tune per cluster).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpsjParams {
    /// Multiplier applied to estimated bytes/rows to reach the deployed
    /// data scale (same role as the simulator's `data_scale`).
    pub data_scale: f64,
    /// Assumed per-row CPU cost, ns.
    pub cpu_ns_per_row: f64,
    /// Assumed sort constant, ns per row·log2(rows).
    pub sort_ns_per_row: f64,
    /// Fraction of scan bytes served from OS caches (fixed guess).
    pub cache_factor: f64,
    /// Fixed per-stage overhead, seconds.
    pub stage_overhead_s: f64,
    /// Fixed per-query overhead, seconds.
    pub query_overhead_s: f64,
}

impl Default for GpsjParams {
    fn default() -> Self {
        Self {
            data_scale: 1.0,
            cpu_ns_per_row: 120.0,
            sort_ns_per_row: 14.0,
            cache_factor: 0.3,
            stage_overhead_s: 0.2,
            query_overhead_s: 0.5,
        }
    }
}

/// The GPSJ analytical cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpsjModel {
    params: GpsjParams,
}

impl GpsjModel {
    /// Creates the model with given calibration.
    pub fn new(params: GpsjParams) -> Self {
        Self { params }
    }

    /// Estimates a plan's execution time in seconds from optimizer
    /// estimates and the resource configuration.
    pub fn estimate_seconds(&self, plan: &PhysicalPlan, res: &ResourceConfig) -> f64 {
        let p = &self.params;
        let slots = res.total_slots().max(1) as f64;
        let disk = res.disk_throughput_mbps * MB;
        let net = res.network_throughput_mbps * MB;

        let mut cpu_rows = 0.0f64;
        let mut sort_cost_ns = 0.0f64;
        let mut scan_bytes = 0.0f64;
        let mut shuffle_bytes = 0.0f64;
        let mut broadcast_bytes = 0.0f64;
        let mut stages = 1usize;

        for node in plan.nodes() {
            let rows = node.est_rows * p.data_scale;
            let bytes = node.est_bytes * p.data_scale;
            match &node.op {
                PhysicalOp::FileScan { .. } => {
                    cpu_rows += rows;
                    scan_bytes += bytes;
                }
                PhysicalOp::ExchangeHash { .. } | PhysicalOp::ExchangeSingle => {
                    shuffle_bytes += bytes;
                    cpu_rows += rows;
                    stages += 1;
                }
                PhysicalOp::BroadcastExchange => {
                    broadcast_bytes += bytes;
                    stages += 1;
                }
                PhysicalOp::Sort { .. } => {
                    sort_cost_ns += rows * (rows.max(2.0)).log2() * p.sort_ns_per_row;
                }
                PhysicalOp::SortMergeJoin { .. }
                | PhysicalOp::BroadcastHashJoin { .. }
                | PhysicalOp::ShuffledHashJoin { .. }
                | PhysicalOp::HashAggregate { .. }
                | PhysicalOp::Filter { .. }
                | PhysicalOp::Project { .. } => cpu_rows += rows,
                PhysicalOp::Limit { .. } => {}
            }
        }

        let cpu_s = (cpu_rows * p.cpu_ns_per_row + sort_cost_ns) * 1e-9 / slots;
        let read_s = scan_bytes * (1.0 - p.cache_factor) / (disk * slots.min(8.0));
        // Shuffle data crosses the wire twice (write + read).
        let shuffle_s = 2.0 * shuffle_bytes / (net * slots.min(8.0));
        let broadcast_s = broadcast_bytes * res.executors.max(1) as f64 / net;
        p.query_overhead_s
            + stages as f64 * p.stage_overhead_s
            + cpu_s
            + read_s
            + shuffle_s
            + broadcast_s
    }
}

/// GPSJ is the serving-time analytical fallback: always available, no
/// checkpoint, no deadline risk.
impl raal::serving::FallbackModel for GpsjModel {
    fn estimate_seconds(&self, plan: &PhysicalPlan, res: &ResourceConfig) -> f64 {
        GpsjModel::estimate_seconds(self, plan, res)
    }
}

/// Evaluates GPSJ against a set of (plan, resources, actual seconds)
/// records.
pub fn evaluate_gpsj<'a>(
    model: &GpsjModel,
    records: impl Iterator<Item = (&'a PhysicalPlan, &'a ResourceConfig, f64)>,
) -> raal::EvalSet {
    let mut set = raal::EvalSet::new();
    for (plan, res, actual) in records {
        set.push(actual, model.estimate_seconds(plan, res));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparksim::plan::physical::AggMode;
    use sparksim::plan::spec::AggSpec;
    use sparksim::schema::ColumnRef;
    use sparksim::sql::ast::AggFunc;

    fn res(executors: usize, cores: usize) -> ResourceConfig {
        ResourceConfig {
            executors,
            cores_per_executor: cores,
            memory_per_executor_gb: 4.0,
            network_throughput_mbps: 120.0,
            disk_throughput_mbps: 200.0,
        }
    }

    fn scan_agg_plan(scan_rows: f64) -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let scan = p.add(
            PhysicalOp::FileScan {
                binding: "t".into(),
                table: "t".into(),
                output: vec![ColumnRef::new("t", "id")],
                pushed_filter: None,
            },
            vec![],
            scan_rows,
            scan_rows * 8.0,
        );
        let aggs = vec![AggSpec { func: AggFunc::Count, arg: None }];
        let partial = p.add(
            PhysicalOp::HashAggregate {
                mode: AggMode::Partial,
                group_by: vec![],
                aggs: aggs.clone(),
            },
            vec![scan],
            1.0,
            8.0,
        );
        let ex = p.add(PhysicalOp::ExchangeSingle, vec![partial], 1.0, 8.0);
        p.add(
            PhysicalOp::HashAggregate { mode: AggMode::Final, group_by: vec![], aggs },
            vec![ex],
            1.0,
            8.0,
        );
        p
    }

    #[test]
    fn bigger_scans_cost_more() {
        let m = GpsjModel::new(GpsjParams::default());
        let small = m.estimate_seconds(&scan_agg_plan(1e5), &res(2, 2));
        let large = m.estimate_seconds(&scan_agg_plan(1e8), &res(2, 2));
        assert!(large > small);
    }

    #[test]
    fn more_slots_cost_less() {
        let m = GpsjModel::new(GpsjParams::default());
        let slow = m.estimate_seconds(&scan_agg_plan(1e8), &res(1, 1));
        let fast = m.estimate_seconds(&scan_agg_plan(1e8), &res(4, 4));
        assert!(fast < slow, "GPSJ is monotone in slots by construction");
    }

    #[test]
    fn estimate_is_deterministic_and_positive() {
        let m = GpsjModel::new(GpsjParams::default());
        let a = m.estimate_seconds(&scan_agg_plan(1e6), &res(2, 2));
        let b = m.estimate_seconds(&scan_agg_plan(1e6), &res(2, 2));
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn data_scale_scales_cost() {
        let params = GpsjParams { data_scale: 10.0, ..GpsjParams::default() };
        let scaled = GpsjModel::new(params).estimate_seconds(&scan_agg_plan(1e7), &res(2, 2));
        let base =
            GpsjModel::new(GpsjParams::default()).estimate_seconds(&scan_agg_plan(1e7), &res(2, 2));
        assert!(scaled > base);
    }
}
