//! # baselines — the comparison cost models of the paper's evaluation
//!
//! * [`tlstm`] — TLSTM, the tree-structured-LSTM learned cost estimator
//!   for relational databases (Table V's opponent);
//! * [`gpsj`] — GPSJ, the hand-crafted analytical cost model for Spark SQL
//!   (Table VI's opponent);
//! * [`micro`] — a CLEO/Microlearner-style per-operator regression model
//!   (the related-work middle ground between analytical and deep).

#![warn(missing_docs)]

pub mod gpsj;
pub mod micro;
pub mod tlstm;

pub use gpsj::{evaluate_gpsj, GpsjModel, GpsjParams};
pub use micro::MicroModel;
pub use tlstm::{evaluate_tlstm, train_tlstm, TlstmConfig, TlstmModel};
