//! Property-based gradient checks: random shapes and random values for
//! every composite structure the cost models rely on.

use nn::gradcheck::check_gradients;
use nn::layers::{Activation, Conv1d, Dense, LstmCell};
use nn::{ParamStore, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 5e-3;
const TOL: f32 = 3e-2;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dense_stack_gradients(seed in 0u64..1000, in_dim in 1usize..6, hidden in 1usize..6) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let d1 = Dense::new(&mut store, &mut rng, "d1", in_dim, hidden, Activation::Tanh);
        let d2 = Dense::new(&mut store, &mut rng, "d2", hidden, 1, Activation::Identity);
        let x: Vec<f32> = (0..in_dim).map(|i| ((seed as usize + i) % 7) as f32 / 7.0 - 0.4).collect();
        let report = check_gradients(
            &mut store,
            move |g, s| {
                let xv = g.input(Tensor::row(&x));
                let h = d1.forward(g, s, xv);
                let y = d2.forward(g, s, h);
                g.mse_loss(y, &Tensor::scalar(0.25))
            },
            EPS,
        );
        prop_assert!(
            report.max_rel_error <= TOL,
            "rel error {} at {}[{}]",
            report.max_rel_error, report.worst_param, report.worst_index
        );
    }

    #[test]
    fn lstm_gradients(seed in 0u64..1000, steps in 1usize..4, in_dim in 1usize..4) {
        let hidden = 3;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", in_dim, hidden);
        let data: Vec<f32> = (0..steps * in_dim)
            .map(|i| ((seed as usize * 3 + i) % 11) as f32 / 11.0 - 0.5)
            .collect();
        let target = Tensor::row(&vec![0.1; hidden]);
        let report = check_gradients(
            &mut store,
            move |g, s| {
                let xs = g.input(Tensor::from_vec(steps, in_dim, data.clone()));
                let hs = cell.forward_seq(g, s, xs);
                let pooled = g.mean_rows(hs);
                g.mse_loss(pooled, &target)
            },
            EPS,
        );
        prop_assert!(
            report.max_rel_error <= TOL,
            "rel error {} at {}[{}]",
            report.max_rel_error, report.worst_param, report.worst_index
        );
    }

    #[test]
    fn conv_gradients(seed in 0u64..1000, len in 1usize..5) {
        let (in_dim, out_dim) = (2, 2);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let conv = Conv1d::new(&mut store, &mut rng, "c", in_dim, out_dim, 3);
        // Push pre-activations well away from the ReLU kink: central
        // differences are invalid within eps of the kink, and that is a
        // property of finite differencing, not of the backward rule.
        {
            let (_, b) = {
                // bias is the second registered parameter of the conv
                let ids: Vec<_> = store.ids().collect();
                (ids[0], ids[1])
            };
            *store.value_mut(b) = Tensor::row(&vec![1.0; out_dim]);
        }
        let data: Vec<f32> = (0..len * in_dim)
            .map(|i| ((seed as usize + 2 * i) % 9) as f32 / 9.0 - 0.3)
            .collect();
        let target = Tensor::row(&[0.05, -0.05]);
        let report = check_gradients(
            &mut store,
            move |g, s| {
                let xs = g.input(Tensor::from_vec(len, in_dim, data.clone()));
                let ys = conv.forward_seq(g, s, xs);
                let pooled = g.mean_rows(ys);
                g.mse_loss(pooled, &target)
            },
            EPS,
        );
        prop_assert!(
            report.max_rel_error <= TOL,
            "rel error {} at {}[{}]",
            report.max_rel_error, report.worst_param, report.worst_index
        );
    }

    #[test]
    fn attention_gradients(seed in 0u64..1000, m in 2usize..6, k in 1usize..5) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = store.register("q", nn::init::xavier_uniform(&mut rng, 1, k));
        let keys = store.register("keys", nn::init::xavier_uniform(&mut rng, m, k));
        let values = store.register("vals", nn::init::xavier_uniform(&mut rng, m, 2));
        let target = Tensor::row(&[0.0, 0.1]);
        let report = check_gradients(
            &mut store,
            move |g, s| {
                let qv = g.param(s, q);
                let kv = g.param(s, keys);
                let vv = g.param(s, values);
                let ctx = nn::layers::dot_attention(g, qv, kv, vv);
                g.mse_loss(ctx, &target)
            },
            EPS,
        );
        prop_assert!(
            report.max_rel_error <= TOL,
            "rel error {} at {}[{}]",
            report.max_rel_error, report.worst_param, report.worst_index
        );
    }
}
