//! Dot-product attention primitives used by RAAL's node-aware and
//! resource-aware attention layers (paper Eq. 8–11).

use crate::graph::{Graph, Var};

/// Scaled dot-product attention of a single query over a set of keys and
/// values.
///
/// * `query` — `1 x k`
/// * `keys` — `m x k`
/// * `values` — `m x h`
///
/// Returns the `1 x h` context `softmax(keys @ queryᵀ / sqrt(k))ᵀ @ values`.
pub fn dot_attention(g: &mut Graph, query: Var, keys: Var, values: Var) -> Var {
    let k = g.value(query).cols();
    assert_eq!(g.value(keys).cols(), k, "attention key width mismatch");
    assert_eq!(
        g.value(keys).rows(),
        g.value(values).rows(),
        "attention keys/values row mismatch"
    );
    let q_t = g.transpose(query); // k x 1
    let scores = g.matmul(keys, q_t); // m x 1
    let scores = g.scale(scores, 1.0 / (k as f32).sqrt());
    let weights = g.softmax_col(scores); // m x 1
    let w_t = g.transpose(weights); // 1 x m
    g.matmul(w_t, values) // 1 x h
}

/// Attention weights (without applying them), for models that need the
/// raw distribution — e.g. to expose which plan nodes a resource vector
/// attends to.
pub fn attention_weights(g: &mut Graph, query: Var, keys: Var) -> Var {
    let k = g.value(query).cols();
    assert_eq!(g.value(keys).cols(), k, "attention key width mismatch");
    let q_t = g.transpose(query);
    let scores = g.matmul(keys, q_t);
    let scores = g.scale(scores, 1.0 / (k as f32).sqrt());
    g.softmax_col(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn attention_focuses_on_matching_key() {
        let mut g = Graph::new();
        // Query matches the second key almost exactly.
        let q = g.input(Tensor::row(&[0.0, 10.0]));
        let keys = g.input(Tensor::from_vec(2, 2, vec![10.0, 0.0, 0.0, 10.0]));
        let values = g.input(Tensor::from_vec(2, 3, vec![1., 1., 1., 9., 9., 9.]));
        let ctx = dot_attention(&mut g, q, keys, values);
        let out = g.value(ctx);
        assert_eq!(out.shape(), (1, 3));
        // Should be dominated by the second value row.
        assert!(out.get(0, 0) > 8.5, "context = {:?}", out);
    }

    #[test]
    fn uniform_keys_give_uniform_weights() {
        let mut g = Graph::new();
        let q = g.input(Tensor::row(&[1.0, 1.0]));
        let keys = g.input(Tensor::from_vec(3, 2, vec![0.5; 6]));
        let w = attention_weights(&mut g, q, keys);
        for i in 0..3 {
            assert!((g.value(w).get(i, 0) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let mut g = Graph::new();
        let q = g.input(Tensor::row(&[0.3, -0.7, 0.1]));
        let keys = g.input(Tensor::from_vec(
            4,
            3,
            vec![0.1, 0.2, 0.3, -0.4, 0.5, -0.6, 0.7, 0.8, 0.9, 0.0, -0.1, 0.2],
        ));
        let w = attention_weights(&mut g, q, keys);
        let sum: f32 = g.value(w).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_flows_through_attention() {
        use crate::params::ParamStore;
        let mut store = ParamStore::new();
        let qid = store.register("q", Tensor::row(&[0.5, -0.5]));
        let mut g = Graph::new();
        let q = g.param(&store, qid);
        let keys = g.input(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let values = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let ctx = dot_attention(&mut g, q, keys, values);
        let loss = g.sum(ctx);
        let grads = g.backward(loss);
        g.accumulate_grads(&grads, &mut store, 1.0);
        assert!(store.grad(qid).norm() > 0.0);
    }
}
