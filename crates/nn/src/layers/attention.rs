//! Dot-product attention primitives used by RAAL's node-aware and
//! resource-aware attention layers (paper Eq. 8–11).

use crate::graph::{Graph, Var};
use crate::infer;

/// Scaled dot-product attention of a single query over a set of keys and
/// values.
///
/// * `query` — `1 x k`
/// * `keys` — `m x k`
/// * `values` — `m x h`
///
/// Returns the `1 x h` context `softmax(keys @ queryᵀ / sqrt(k))ᵀ @ values`.
pub fn dot_attention(g: &mut Graph, query: Var, keys: Var, values: Var) -> Var {
    let k = g.value(query).cols();
    assert_eq!(g.value(keys).cols(), k, "attention key width mismatch");
    assert_eq!(
        g.value(keys).rows(),
        g.value(values).rows(),
        "attention keys/values row mismatch"
    );
    let q_t = g.transpose(query); // k x 1
    let scores = g.matmul(keys, q_t); // m x 1
    let scores = g.scale(scores, 1.0 / (k as f32).sqrt());
    let weights = g.softmax_col(scores); // m x 1
    let w_t = g.transpose(weights); // 1 x m
    g.matmul(w_t, values) // 1 x h
}

/// Tape-free equivalent of [`dot_attention`].
///
/// * `query` — length `k_dim`
/// * `keys` — row-major matrix with `k_dim` columns
/// * `values` — row-major matrix with `v_dim` columns
/// * `sel` — which rows of `keys`/`values` participate; `None` means the
///   first `m` rows in order (`m` is ignored when `sel` is `Some`)
/// * `scores` — caller-provided scratch (resized internally)
/// * `out` — the `v_dim`-long context, overwritten
///
/// The score, softmax and value-mixing loops accumulate in the same
/// order as the graph ops, so the result is bit-identical to the tape.
#[allow(clippy::too_many_arguments)]
pub fn dot_attention_into(
    query: &[f32],
    keys: &[f32],
    values: &[f32],
    k_dim: usize,
    v_dim: usize,
    sel: Option<&[usize]>,
    m: usize,
    scores: &mut Vec<f32>,
    out: &mut [f32],
) {
    let m = sel.map_or(m, <[usize]>::len);
    debug_assert!(m > 0, "attention over zero rows");
    debug_assert_eq!(query.len(), k_dim, "attention key width mismatch");
    debug_assert_eq!(out.len(), v_dim, "attention context width mismatch");
    let scale = 1.0 / (k_dim as f32).sqrt();
    scores.clear();
    for i in 0..m {
        // PANIC-FREE: i < m = sel.len() when a selection is given, and
        // callers pass row indices drawn from the keys/values matrices,
        // so both the s[i] lookup and the row slices stay in bounds.
        // HOT-ALLOC: scores is a caller-owned scratch vector that
        // reaches its high-water capacity during warmup; clear() keeps
        // the allocation, so steady-state pushes never reallocate.
        let r = sel.map_or(i, |s| s[i]);
        scores.push(infer::dot(&keys[r * k_dim..(r + 1) * k_dim], query) * scale);
    }
    infer::softmax_inplace(scores);
    out.fill(0.0);
    for (i, &w) in scores.iter().enumerate() {
        // PANIC-FREE: same bounds as the score loop above.
        let r = sel.map_or(i, |s| s[i]);
        infer::axpy(out, w, &values[r * v_dim..(r + 1) * v_dim]);
    }
}

/// Attention weights (without applying them), for models that need the
/// raw distribution — e.g. to expose which plan nodes a resource vector
/// attends to.
pub fn attention_weights(g: &mut Graph, query: Var, keys: Var) -> Var {
    let k = g.value(query).cols();
    assert_eq!(g.value(keys).cols(), k, "attention key width mismatch");
    let q_t = g.transpose(query);
    let scores = g.matmul(keys, q_t);
    let scores = g.scale(scores, 1.0 / (k as f32).sqrt());
    g.softmax_col(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn attention_focuses_on_matching_key() {
        let mut g = Graph::new();
        // Query matches the second key almost exactly.
        let q = g.input(Tensor::row(&[0.0, 10.0]));
        let keys = g.input(Tensor::from_vec(2, 2, vec![10.0, 0.0, 0.0, 10.0]));
        let values = g.input(Tensor::from_vec(2, 3, vec![1., 1., 1., 9., 9., 9.]));
        let ctx = dot_attention(&mut g, q, keys, values);
        let out = g.value(ctx);
        assert_eq!(out.shape(), (1, 3));
        // Should be dominated by the second value row.
        assert!(out.get(0, 0) > 8.5, "context = {:?}", out);
    }

    #[test]
    fn uniform_keys_give_uniform_weights() {
        let mut g = Graph::new();
        let q = g.input(Tensor::row(&[1.0, 1.0]));
        let keys = g.input(Tensor::from_vec(3, 2, vec![0.5; 6]));
        let w = attention_weights(&mut g, q, keys);
        for i in 0..3 {
            assert!((g.value(w).get(i, 0) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let mut g = Graph::new();
        let q = g.input(Tensor::row(&[0.3, -0.7, 0.1]));
        let keys = g.input(Tensor::from_vec(
            4,
            3,
            vec![0.1, 0.2, 0.3, -0.4, 0.5, -0.6, 0.7, 0.8, 0.9, 0.0, -0.1, 0.2],
        ));
        let w = attention_weights(&mut g, q, keys);
        let sum: f32 = g.value(w).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn dot_attention_into_matches_tape_bitwise() {
        let q = Tensor::row(&[0.3, -0.7, 0.1]);
        let keys = Tensor::from_vec(
            4,
            3,
            vec![0.1, 0.2, 0.3, -0.4, 0.5, -0.6, 0.7, 0.8, 0.9, 0.0, -0.1, 0.2],
        );
        let values = Tensor::from_vec(4, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]);

        // All rows.
        let mut g = Graph::new();
        let (qv, kv, vv) = (g.input(q.clone()), g.input(keys.clone()), g.input(values.clone()));
        let ctx = dot_attention(&mut g, qv, kv, vv);
        let mut scores = Vec::new();
        let mut out = [0.0f32; 2];
        dot_attention_into(
            q.data(),
            keys.data(),
            values.data(),
            3,
            2,
            None,
            4,
            &mut scores,
            &mut out,
        );
        assert_eq!(&out, g.value(ctx).data());

        // A selected subset of rows, as node-aware attention gathers children.
        let sel = [2usize, 0];
        let mut g = Graph::new();
        let qv = g.input(q.clone());
        let kv = g.input(Tensor::concat_rows(&[&keys.slice_rows(2, 1), &keys.slice_rows(0, 1)]));
        let vv =
            g.input(Tensor::concat_rows(&[&values.slice_rows(2, 1), &values.slice_rows(0, 1)]));
        let ctx = dot_attention(&mut g, qv, kv, vv);
        dot_attention_into(
            q.data(),
            keys.data(),
            values.data(),
            3,
            2,
            Some(&sel),
            0,
            &mut scores,
            &mut out,
        );
        assert_eq!(&out, g.value(ctx).data());
    }

    #[test]
    fn gradient_flows_through_attention() {
        use crate::params::ParamStore;
        let mut store = ParamStore::new();
        let qid = store.register("q", Tensor::row(&[0.5, -0.5]));
        let mut g = Graph::new();
        let q = g.param(&store, qid);
        let keys = g.input(Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let values = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let ctx = dot_attention(&mut g, q, keys, values);
        let loss = g.sum(ctx);
        let grads = g.backward(loss);
        g.accumulate_grads(&grads, &mut store, 1.0);
        assert!(store.grad(qid).norm() > 0.0);
    }
}
