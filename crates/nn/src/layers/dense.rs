//! Fully connected layer.

use super::param_shape;
use crate::graph::{Graph, Var};
use crate::infer::quant::{self, QuantizedMatrix};
use crate::infer::{self, InferArena};
use crate::init;
use crate::params::{ParamId, ParamStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation function applied after the affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// No nonlinearity.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// A dense layer `y = act(x @ W + b)` with `W : in x out`, `b : 1 x out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
    /// Post-affine activation.
    pub activation: Activation,
}

impl Dense {
    /// Registers a dense layer's parameters in `store`. Uses He
    /// initialisation for ReLU and Xavier otherwise.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Self {
        let w_init = match activation {
            Activation::Relu => init::he_uniform(rng, in_dim, out_dim),
            _ => init::xavier_uniform(rng, in_dim, out_dim),
        };
        let w = store.register(format!("{name}.w"), w_init);
        let b = store.register(format!("{name}.b"), init::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim, activation }
    }

    /// Parameter handles `(weight, bias)`, e.g. for inspection in tests.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }

    /// Describes the layer to the static shape checker: declared
    /// dimensions plus the *actual* registered tensor shapes, so a
    /// tampered checkpoint cannot satisfy the check by construction.
    pub fn shape_stage(&self, store: &ParamStore) -> analysis::shape::Stage {
        let w_name = store.name(self.w);
        let layer = w_name.strip_suffix(".w").unwrap_or(w_name).to_string();
        analysis::shape::Stage::new(
            layer,
            analysis::shape::ShapeOp::Dense { in_dim: self.in_dim, out_dim: self.out_dim },
            vec![param_shape(store, self.w), param_shape(store, self.b)],
        )
    }

    /// Applies the layer to a `batch x in_dim` variable, producing
    /// `batch x out_dim`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        assert_eq!(g.value(x).cols(), self.in_dim, "dense layer input width mismatch");
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let affine = g.matmul(x, w);
        let affine = g.add_row(affine, b);
        match self.activation {
            Activation::Identity => affine,
            Activation::Relu => g.relu(affine),
            Activation::Sigmoid => g.sigmoid(affine),
            Activation::Tanh => g.tanh(affine),
        }
    }

    /// Tape-free equivalent of [`Dense::forward`]: fused affine + bias +
    /// activation over `rows` row-major input rows, returning a
    /// `rows * out_dim` buffer taken from `arena`. Same accumulation
    /// order as the tape path (bias added after the product); only FMA
    /// contraction and, for sigmoid/tanh, the fast polynomial `exp`
    /// drift from it (~1e-7).
    pub fn infer(
        &self,
        store: &ParamStore,
        x: &[f32],
        rows: usize,
        arena: &mut InferArena,
    ) -> Vec<f32> {
        self.infer_with(store, x, rows, arena, None)
    }

    /// [`Dense::infer`] with an optional int8 weight snapshot: when `qw`
    /// is given the affine map runs through the i8 kernel (the bias and
    /// the activation stay f32). `qw` must have been quantized from this
    /// layer's current weight tensor.
    pub fn infer_with(
        &self,
        store: &ParamStore,
        x: &[f32],
        rows: usize,
        arena: &mut InferArena,
        qw: Option<&QuantizedMatrix>,
    ) -> Vec<f32> {
        // PANIC-FREE: deliberate input guard; the model constructor
        // fixes in_dim and every serving caller encodes to that width.
        assert_eq!(x.len(), rows * self.in_dim, "dense layer input width mismatch");
        let b = store.value(self.b).data();
        let mut out = arena.take(rows * self.out_dim);
        match qw {
            Some(qw) => quant::matmul_q8_into(x, rows, self.in_dim, qw, &mut out),
            None => {
                let w = store.value(self.w).data();
                infer::matmul_into(x, rows, self.in_dim, w, self.out_dim, &mut out);
            }
        }
        for r in 0..rows {
            // PANIC-FREE: r < rows and out has length rows * out_dim.
            let row = &mut out[r * self.out_dim..(r + 1) * self.out_dim];
            for (o, &bias) in row.iter_mut().zip(b.iter()) {
                *o += bias;
            }
        }
        infer::activate(&mut out, self.activation);
        out
    }

    /// Snapshots the weight matrix to int8 (the bias stays f32).
    pub fn quantize_weights(&self, store: &ParamStore) -> QuantizedMatrix {
        QuantizedMatrix::quantize(store.value(self.w).data(), self.in_dim, self.out_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(&mut store, &mut rng, "d", 3, 2, Activation::Identity);
        let (w, b) = layer.params();
        *store.value_mut(w) = Tensor::from_vec(3, 2, vec![1., 0., 0., 1., 0., 0.]);
        *store.value_mut(b) = Tensor::row(&[10., 20.]);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (2, 2));
        assert_eq!(g.value(y).data(), &[11., 22., 14., 25.]);
    }

    #[test]
    fn relu_activation_clamps() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(&mut store, &mut rng, "d", 1, 1, Activation::Relu);
        *store.value_mut(layer.params().0) = Tensor::scalar(1.0);
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(-5.0));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).item(), 0.0);
    }

    #[test]
    fn infer_tracks_tape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        for act in [Activation::Identity, Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
            let layer = Dense::new(&mut store, &mut rng, "d", 6, 3, act);
            let x = Tensor::from_vec(2, 6, (0..12).map(|i| (i as f32 * 0.31).cos()).collect());
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = layer.forward(&mut g, &store, xv);
            let mut arena = InferArena::new();
            let fast = layer.infer(&store, x.data(), 2, &mut arena);
            for (&got, &want) in fast.iter().zip(g.value(y).data()) {
                assert!((got - want).abs() <= 1e-5, "{act:?}: {got} vs {want}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_input_width() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(&mut store, &mut rng, "d", 3, 2, Activation::Identity);
        let mut g = Graph::new();
        let x = g.input(Tensor::row(&[1.0, 2.0]));
        let _ = layer.forward(&mut g, &store, x);
    }
}
