//! Long Short-Term Memory cell and sequence runner.
//!
//! Implements the standard LSTM equations of the paper's Sec. IV-D (plan
//! feature layer): gates `[i, f, g, o]` computed from `x @ Wx + h @ Wh + b`,
//! with `c' = f ⊙ c + i ⊙ g` and `h' = o ⊙ tanh(c')`.

use crate::graph::{Graph, Var};
use crate::infer::quant::{self, QuantizedMatrix};
use crate::infer::{self, InferArena};
use crate::init;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a single-layer LSTM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Hidden-state dimension.
    pub hidden: usize,
}

/// Parameter variables of an [`LstmCell`] bound to one graph, so the
/// weights are copied onto the tape once per sample rather than per step.
pub struct BoundLstm<'a> {
    cell: &'a LstmCell,
    wx: Var,
    wh: Var,
    b: Var,
}

impl LstmCell {
    /// Registers a cell's parameters in `store`. The bias layout is
    /// `[input, forget, cell, output]` with the forget block set to 1.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx =
            store.register(format!("{name}.wx"), init::xavier_uniform(rng, in_dim, 4 * hidden));
        let wh =
            store.register(format!("{name}.wh"), init::xavier_uniform(rng, hidden, 4 * hidden));
        let b = store.register(format!("{name}.b"), init::lstm_bias(hidden));
        Self { wx, wh, b, in_dim, hidden }
    }

    /// Describes the cell to the static shape checker: declared
    /// dimensions plus the actual registered tensor shapes.
    pub fn shape_stage(&self, store: &ParamStore) -> analysis::shape::Stage {
        let wx_name = store.name(self.wx);
        let layer = wx_name.strip_suffix(".wx").unwrap_or(wx_name).to_string();
        analysis::shape::Stage::new(
            layer,
            analysis::shape::ShapeOp::Lstm { in_dim: self.in_dim, hidden: self.hidden },
            vec![
                super::param_shape(store, self.wx),
                super::param_shape(store, self.wh),
                super::param_shape(store, self.b),
            ],
        )
    }

    /// Copies the cell's parameters onto `g`'s tape for use in a sequence.
    pub fn bind<'a>(&'a self, g: &mut Graph, store: &ParamStore) -> BoundLstm<'a> {
        BoundLstm {
            cell: self,
            wx: g.param(store, self.wx),
            wh: g.param(store, self.wh),
            b: g.param(store, self.b),
        }
    }

    /// Runs the cell over a sequence packed as an `n x in_dim` matrix
    /// (row `t` is the input at step `t`), starting from zero state.
    /// Returns the `n x hidden` matrix of hidden states.
    pub fn forward_seq(&self, g: &mut Graph, store: &ParamStore, xs: Var) -> Var {
        let n = g.value(xs).rows();
        assert!(n > 0, "LSTM sequence must be non-empty");
        assert_eq!(g.value(xs).cols(), self.in_dim, "LSTM input width mismatch");
        let bound = self.bind(g, store);
        let mut h = g.input(Tensor::zeros(1, self.hidden));
        let mut c = g.input(Tensor::zeros(1, self.hidden));
        let mut hs = Vec::with_capacity(n);
        for t in 0..n {
            let x_t = g.slice_rows(xs, t, 1);
            let (nh, nc) = bound.step(g, x_t, h, c);
            h = nh;
            c = nc;
            hs.push(h);
        }
        g.concat_rows(&hs)
    }

    /// Tape-free equivalent of [`LstmCell::forward_seq`]: runs the cell
    /// over `n` rows of `xs` (row-major, `n * in_dim` long) and returns
    /// the `n x hidden` hidden states as a flat buffer taken from
    /// `arena`. All four gates are computed in block-wise sweeps per
    /// step through the SIMD kernels in [`crate::infer`]; accumulation
    /// order matches the graph ops, so the result tracks the tape path
    /// to within the FMA / polynomial-`exp` drift (~1e-6 absolute).
    pub fn infer_seq(
        &self,
        store: &ParamStore,
        xs: &[f32],
        n: usize,
        arena: &mut InferArena,
    ) -> Vec<f32> {
        self.infer_seq_with(store, xs, n, arena, None)
    }

    /// [`LstmCell::infer_seq`] with an optional int8 snapshot of
    /// `(Wx, Wh)`: when given, both gate matmuls run through the i8
    /// kernel (the bias and the recurrent state stay f32). The snapshot
    /// must come from this cell's current weight tensors
    /// ([`LstmCell::quantize_weights`]).
    pub fn infer_seq_with(
        &self,
        store: &ParamStore,
        xs: &[f32],
        n: usize,
        arena: &mut InferArena,
        qw: Option<(&QuantizedMatrix, &QuantizedMatrix)>,
    ) -> Vec<f32> {
        // PANIC-FREE: deliberate input guards; the model constructor
        // fixes in_dim and every serving caller encodes to that width.
        assert!(n > 0, "LSTM sequence must be non-empty");
        assert_eq!(xs.len(), n * self.in_dim, "LSTM input length mismatch");
        let _k = telemetry::kernel_span("nn.lstm_seq");
        let hidden = self.hidden;
        let gates = 4 * hidden;
        let wx = store.value(self.wx).data();
        let wh = store.value(self.wh).data();
        let b = store.value(self.b).data();

        let mut h = arena.take(hidden);
        let mut c = arena.take(hidden);
        let mut xz = arena.take(gates);
        let mut hz = arena.take(gates);
        let mut ct = arena.take(hidden);
        let mut out = arena.take(n * hidden);
        for t in 0..n {
            // PANIC-FREE: t < n and xs.len() == n * in_dim (asserted at
            // entry), so the step slice is always in bounds.
            let x_t = &xs[t * self.in_dim..(t + 1) * self.in_dim];
            match qw {
                Some((qwx, qwh)) => {
                    quant::matmul_q8_into(x_t, 1, self.in_dim, qwx, &mut xz);
                    quant::matmul_q8_into(&h, 1, hidden, qwh, &mut hz);
                }
                None => {
                    infer::matmul_into(x_t, 1, self.in_dim, wx, gates, &mut xz);
                    infer::matmul_into(&h, 1, hidden, wh, gates, &mut hz);
                }
            }
            // z = (x@Wx + h@Wh) + b, associated exactly like the tape.
            // PANIC-FREE: j < gates; xz/hz are arena buffers of length
            // gates and b is the gate bias tensor of the same length.
            for j in 0..gates {
                xz[j] = (xz[j] + hz[j]) + b[j];
            }
            // Gate layout [i, f, g, o]: sigmoid the contiguous [i, f]
            // block, tanh the candidate, sigmoid the output gate — three
            // vectorised sweeps instead of four scalar calls per lane.
            // PANIC-FREE: every gate range ends at or before
            // xz.len() == gates == 4 * hidden.
            infer::sigmoid_slice(&mut xz[..2 * hidden]);
            infer::tanh_slice(&mut xz[2 * hidden..3 * hidden]);
            infer::sigmoid_slice(&mut xz[3 * hidden..]);
            // PANIC-FREE: j < hidden indexes the hidden-sized arena
            // buffers c/h/ct, and every xz offset is below 4 * hidden.
            for j in 0..hidden {
                c[j] = xz[hidden + j] * c[j] + xz[j] * xz[2 * hidden + j];
            }
            ct.copy_from_slice(&c);
            infer::tanh_slice(&mut ct);
            // PANIC-FREE: same bounds as the cell-state sweep above.
            for j in 0..hidden {
                h[j] = xz[3 * hidden + j] * ct[j];
            }
            // PANIC-FREE: t < n and out has length n * hidden.
            out[t * hidden..(t + 1) * hidden].copy_from_slice(&h);
        }
        arena.give(h);
        arena.give(c);
        arena.give(xz);
        arena.give(hz);
        arena.give(ct);
        out
    }

    /// Snapshots `(Wx, Wh)` to int8 (the bias stays f32).
    pub fn quantize_weights(&self, store: &ParamStore) -> (QuantizedMatrix, QuantizedMatrix) {
        let gates = 4 * self.hidden;
        (
            QuantizedMatrix::quantize(store.value(self.wx).data(), self.in_dim, gates),
            QuantizedMatrix::quantize(store.value(self.wh).data(), self.hidden, gates),
        )
    }
}

impl BoundLstm<'_> {
    /// One LSTM step: `(h, c) -> (h', c')` for a `1 x in_dim` input.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var, c: Var) -> (Var, Var) {
        let hidden = self.cell.hidden;
        let xz = g.matmul(x, self.wx);
        let hz = g.matmul(h, self.wh);
        let z = g.add(xz, hz);
        let z = g.add_row(z, self.b);
        let i_gate = g.slice_cols(z, 0, hidden);
        let f_gate = g.slice_cols(z, hidden, hidden);
        let g_gate = g.slice_cols(z, 2 * hidden, hidden);
        let o_gate = g.slice_cols(z, 3 * hidden, hidden);
        let i = g.sigmoid(i_gate);
        let f = g.sigmoid(f_gate);
        let g_cand = g.tanh(g_gate);
        let o = g.sigmoid(o_gate);
        let fc = g.mul(f, c);
        let ig = g.mul(i, g_cand);
        let c_new = g.add(fc, ig);
        let c_act = g.tanh(c_new);
        let h_new = g.mul(o, c_act);
        (h_new, c_new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequence_output_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 5, 8);
        let mut g = Graph::new();
        let xs = g.input(Tensor::full(4, 5, 0.1));
        let hs = cell.forward_seq(&mut g, &store, xs);
        assert_eq!(g.value(hs).shape(), (4, 8));
        assert!(g.value(hs).all_finite());
    }

    #[test]
    fn hidden_states_bounded_by_tanh() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 2, 4);
        let mut g = Graph::new();
        let xs = g.input(Tensor::full(6, 2, 100.0)); // extreme inputs
        let hs = cell.forward_seq(&mut g, &store, xs);
        assert!(g.value(hs).data().iter().all(|&x| x.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn state_carries_information_across_steps() {
        // Same input at every step must not produce identical hidden states
        // at steps 1 and 2 (the recurrent path is active).
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 3, 6);
        let mut g = Graph::new();
        let xs = g.input(Tensor::full(3, 3, 0.5));
        let hs = cell.forward_seq(&mut g, &store, xs);
        let h0 = g.value(hs).row_slice(0).to_vec();
        let h1 = g.value(hs).row_slice(1).to_vec();
        assert_ne!(h0, h1);
    }

    #[test]
    fn infer_seq_tracks_tape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 5, 8);
        let xs = Tensor::from_vec(4, 5, (0..20).map(|i| (i as f32 * 0.17).sin()).collect());
        let mut g = Graph::new();
        let xv = g.input(xs.clone());
        let hs = cell.forward_seq(&mut g, &store, xv);
        let mut arena = InferArena::new();
        let fast = cell.infer_seq(&store, xs.data(), 4, &mut arena);
        for (&got, &want) in fast.iter().zip(g.value(hs).data()) {
            assert!((got - want).abs() <= 1e-5, "fast {got} drifted from tape {want}");
        }
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 3, 4);
        let mut g = Graph::new();
        let xs = g.input(Tensor::full(3, 3, 0.3));
        let hs = cell.forward_seq(&mut g, &store, xs);
        let loss = g.mean(hs);
        let grads = g.backward(loss);
        g.accumulate_grads(&grads, &mut store, 1.0);
        for id in store.ids().collect::<Vec<_>>() {
            assert!(store.grad(id).norm() > 0.0, "no gradient reached {}", store.name(id));
        }
    }
}
