//! Neural-network layers built on top of the autograd [`crate::graph::Graph`].

mod attention;
mod conv1d;
mod dense;
mod lstm;

pub use attention::{attention_weights, dot_attention, dot_attention_into};
pub use conv1d::Conv1d;
pub use dense::{Activation, Dense};
pub use lstm::{BoundLstm, LstmCell};
