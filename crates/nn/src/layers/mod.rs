//! Neural-network layers built on top of the autograd [`crate::graph::Graph`].

mod attention;
mod conv1d;
mod dense;
mod lstm;

pub use attention::{attention_weights, dot_attention, dot_attention_into};
pub use conv1d::Conv1d;
pub use dense::{Activation, Dense};
pub use lstm::{BoundLstm, LstmCell};

use crate::params::{ParamId, ParamStore};

/// The actual registered shape of one parameter, as the static shape
/// checker wants it (name + rows + cols).
pub(crate) fn param_shape(store: &ParamStore, id: ParamId) -> analysis::shape::ParamShape {
    let (rows, cols) = store.value(id).shape();
    analysis::shape::ParamShape::new(store.name(id), rows, cols)
}
