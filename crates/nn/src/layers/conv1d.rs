//! One-dimensional convolution over a node sequence, used by the RAAC
//! ablation (the paper's CNN variant that replaces the LSTM plan-feature
//! layer).

use crate::graph::{Graph, Var};
use crate::infer::quant::{self, QuantizedMatrix};
use crate::infer::{self, InferArena};
use crate::init;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A "same"-padded 1-D convolution along the row (time) axis of an
/// `n x in_dim` sequence, producing `n x out_dim`. The kernel sees
/// `width` consecutive rows (width must be odd).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    w: ParamId,
    b: ParamId,
    /// Input feature dimension (per row).
    pub in_dim: usize,
    /// Output channels.
    pub out_dim: usize,
    /// Kernel width in rows (odd).
    pub width: usize,
}

impl Conv1d {
    /// Registers a convolution's parameters in `store`.
    ///
    /// # Panics
    /// Panics if `width` is even (same-padding needs a symmetric window).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        width: usize,
    ) -> Self {
        assert!(width % 2 == 1, "Conv1d width must be odd, got {width}");
        let w = store.register(format!("{name}.w"), init::he_uniform(rng, width * in_dim, out_dim));
        let b = store.register(format!("{name}.b"), init::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim, width }
    }

    /// Describes the convolution to the static shape checker: declared
    /// dimensions plus the actual registered tensor shapes.
    pub fn shape_stage(&self, store: &ParamStore) -> analysis::shape::Stage {
        let w_name = store.name(self.w);
        let layer = w_name.strip_suffix(".w").unwrap_or(w_name).to_string();
        analysis::shape::Stage::new(
            layer,
            analysis::shape::ShapeOp::Conv1d {
                in_dim: self.in_dim,
                out_dim: self.out_dim,
                width: self.width,
            },
            vec![super::param_shape(store, self.w), super::param_shape(store, self.b)],
        )
    }

    /// Applies the convolution with ReLU to an `n x in_dim` sequence.
    pub fn forward_seq(&self, g: &mut Graph, store: &ParamStore, xs: Var) -> Var {
        let n = g.value(xs).rows();
        assert!(n > 0, "Conv1d sequence must be non-empty");
        assert_eq!(g.value(xs).cols(), self.in_dim, "Conv1d input width mismatch");
        let half = self.width / 2;
        let zero_row = g.input(Tensor::zeros(1, self.in_dim));
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);

        let mut out_rows = Vec::with_capacity(n);
        for t in 0..n {
            // Gather the window rows, zero-padded at the boundaries.
            let mut window = Vec::with_capacity(self.width);
            for offset in 0..self.width {
                let pos = t as isize + offset as isize - half as isize;
                if pos < 0 || pos >= n as isize {
                    window.push(zero_row);
                } else {
                    window.push(g.slice_rows(xs, pos as usize, 1));
                }
            }
            let flat = g.concat_cols(&window); // 1 x (width * in_dim)
            let affine = g.matmul(flat, w);
            let affine = g.add_row(affine, b);
            out_rows.push(g.relu(affine));
        }
        g.concat_rows(&out_rows)
    }

    /// Tape-free equivalent of [`Conv1d::forward_seq`] over `n` rows of
    /// `xs` (row-major, `n * in_dim` long), returning a flat
    /// `n x out_dim` buffer taken from `arena`. The zero-padded window is
    /// assembled into one reused scratch row, so each position is a
    /// single fused affine + ReLU.
    pub fn infer_seq(
        &self,
        store: &ParamStore,
        xs: &[f32],
        n: usize,
        arena: &mut InferArena,
    ) -> Vec<f32> {
        self.infer_seq_with(store, xs, n, arena, None)
    }

    /// [`Conv1d::infer_seq`] with an optional int8 weight snapshot: when
    /// given, each window's affine map runs through the i8 kernel (bias
    /// and ReLU stay f32). The snapshot must come from this layer's
    /// current kernel tensor ([`Conv1d::quantize_weights`]).
    pub fn infer_seq_with(
        &self,
        store: &ParamStore,
        xs: &[f32],
        n: usize,
        arena: &mut InferArena,
        qw: Option<&QuantizedMatrix>,
    ) -> Vec<f32> {
        // PANIC-FREE: deliberate input guards; the model constructor
        // fixes in_dim and every serving caller encodes to that width.
        assert!(n > 0, "Conv1d sequence must be non-empty");
        assert_eq!(xs.len(), n * self.in_dim, "Conv1d input length mismatch");
        let _k = telemetry::kernel_span("nn.conv1d_seq");
        let half = self.width / 2;
        let w = store.value(self.w).data();
        let b = store.value(self.b).data();
        let mut flat = arena.take(self.width * self.in_dim);
        let mut out = arena.take(n * self.out_dim);
        for t in 0..n {
            for offset in 0..self.width {
                let pos = t as isize + offset as isize - half as isize;
                // PANIC-FREE: offset < width bounds the flat window
                // slice, and pos is range-checked against [0, n) before
                // the xs slice (whose length is asserted at entry).
                let dst = &mut flat[offset * self.in_dim..(offset + 1) * self.in_dim];
                if pos < 0 || pos >= n as isize {
                    dst.fill(0.0);
                } else {
                    let pos = pos as usize;
                    dst.copy_from_slice(&xs[pos * self.in_dim..(pos + 1) * self.in_dim]);
                }
            }
            // PANIC-FREE: t < n and out has length n * out_dim.
            let row = &mut out[t * self.out_dim..(t + 1) * self.out_dim];
            match qw {
                Some(qw) => quant::matmul_q8_into(&flat, 1, self.width * self.in_dim, qw, row),
                None => {
                    infer::matmul_into(&flat, 1, self.width * self.in_dim, w, self.out_dim, row)
                }
            }
            for (o, &bias) in row.iter_mut().zip(b.iter()) {
                *o = (*o + bias).max(0.0);
            }
        }
        arena.give(flat);
        out
    }

    /// Snapshots the kernel matrix to int8 (the bias stays f32).
    pub fn quantize_weights(&self, store: &ParamStore) -> QuantizedMatrix {
        QuantizedMatrix::quantize(
            store.value(self.w).data(),
            self.width * self.in_dim,
            self.out_dim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_padding_preserves_length() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv1d::new(&mut store, &mut rng, "c", 4, 6, 3);
        let mut g = Graph::new();
        let xs = g.input(Tensor::full(5, 4, 0.2));
        let ys = conv.forward_seq(&mut g, &store, xs);
        assert_eq!(g.value(ys).shape(), (5, 6));
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn rejects_even_width() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Conv1d::new(&mut store, &mut rng, "c", 4, 6, 2);
    }

    #[test]
    fn known_kernel_computes_windowed_sum() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv1d::new(&mut store, &mut rng, "c", 1, 1, 3);
        // Kernel that sums its window: w = [1, 1, 1]^T.
        *store.value_mut(conv.w) = Tensor::col(&[1.0, 1.0, 1.0]);
        *store.value_mut(conv.b) = Tensor::scalar(0.0);
        let mut g = Graph::new();
        let xs = g.input(Tensor::col(&[1.0, 2.0, 3.0]));
        let ys = conv.forward_seq(&mut g, &store, xs);
        // [0+1+2, 1+2+3, 2+3+0] = [3, 6, 5]
        assert_eq!(g.value(ys).data(), &[3.0, 6.0, 5.0]);
    }

    #[test]
    fn infer_seq_tracks_tape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let conv = Conv1d::new(&mut store, &mut rng, "c", 4, 6, 3);
        let xs = Tensor::from_vec(5, 4, (0..20).map(|i| (i as f32 * 0.23).sin()).collect());
        let mut g = Graph::new();
        let xv = g.input(xs.clone());
        let ys = conv.forward_seq(&mut g, &store, xv);
        let mut arena = InferArena::new();
        let fast = conv.infer_seq(&store, xs.data(), 5, &mut arena);
        for (&got, &want) in fast.iter().zip(g.value(ys).data()) {
            assert!((got - want).abs() <= 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn gradients_flow_to_kernel() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv1d::new(&mut store, &mut rng, "c", 3, 2, 3);
        // A positive bias guarantees some pre-ReLU activations are positive,
        // so the gradient cannot be killed by an unlucky initialisation.
        *store.value_mut(conv.b) = Tensor::row(&[1.0, 1.0]);
        let mut g = Graph::new();
        let xs = g.input(Tensor::full(4, 3, 0.5));
        let ys = conv.forward_seq(&mut g, &store, xs);
        let loss = g.mean(ys);
        let grads = g.backward(loss);
        g.accumulate_grads(&grads, &mut store, 1.0);
        assert!(store.grad(conv.w).norm() > 0.0);
    }
}
