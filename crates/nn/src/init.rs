//! Weight initialisation schemes.

use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suits tanh/sigmoid layers (LSTM).
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect())
}

/// He/Kaiming uniform initialisation: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// Suits ReLU layers (dense prediction head, CNN).
pub fn he_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let a = (6.0 / rows as f32).sqrt();
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect())
}

/// Uniform initialisation in `(-a, a)`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, a: f32) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect())
}

/// All-zeros tensor (biases).
pub fn zeros(rows: usize, cols: usize) -> Tensor {
    Tensor::zeros(rows, cols)
}

/// LSTM forget-gate-friendly bias: zeros except the forget-gate block,
/// which is set to 1 so early training does not forget aggressively.
///
/// Expects the `1 x 4h` gate layout `[input, forget, cell, output]` used by
/// [`crate::layers::LstmCell`].
pub fn lstm_bias(hidden: usize) -> Tensor {
    let mut b = Tensor::zeros(1, 4 * hidden);
    for i in hidden..2 * hidden {
        b.set(0, i, 1.0);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(&mut rng, 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
        // Not degenerate: values vary.
        assert!(t.data().iter().any(|&x| x.abs() > 1e-4));
    }

    #[test]
    fn he_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = he_uniform(&mut rng, 24, 8);
        let a = (6.0f32 / 24.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn initialisation_is_deterministic_under_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(42), 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(42), 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn lstm_bias_sets_forget_gate_block() {
        let b = lstm_bias(3);
        assert_eq!(b.shape(), (1, 12));
        assert_eq!(b.row_slice(0), &[0., 0., 0., 1., 1., 1., 0., 0., 0., 0., 0., 0.]);
    }
}
