//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape of operations built freshly for every training
//! sample (plan sequences have variable length, so static graphs would not
//! help). [`Graph::backward`] walks the tape in reverse and produces a
//! gradient for every node; [`Graph::accumulate_grads`] then adds the
//! gradients of parameter leaves into a [`ParamStore`].
//!
//! Every operation's backward rule is validated against central finite
//! differences in `gradcheck` tests, which is the property that makes the
//! hand-written LSTM/attention layers trustworthy.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Tape index of this variable (stable for the graph's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf (inputs, targets); receives no gradient of interest.
    Input,
    /// Trainable leaf; gradient flows into the parameter store.
    Param(ParamId),
    MatMul(usize, usize),
    Add(usize, usize),
    /// `matrix + row`: broadcasts a `1 x c` row over every row of a `r x c` matrix.
    AddRow(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Scale(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    SoftmaxRows(usize),
    /// Softmax over an `n x 1` column vector.
    SoftmaxCol(usize),
    Transpose(usize),
    ConcatRows(Vec<usize>),
    ConcatCols(Vec<usize>),
    SliceRows(usize, usize, usize),
    SliceCols(usize, usize, usize),
    Sum(usize),
    Mean(usize),
    /// Mean over rows: `r x c -> 1 x c`.
    MeanRows(usize),
    /// Squared-error loss against a constant target, averaged over elements.
    MseLoss(usize, Tensor),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A tape of tensor operations supporting reverse-mode differentiation.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

/// Per-node gradients produced by [`Graph::backward`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if any gradient reached it.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(64) }
    }

    /// Number of nodes recorded on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        // PANIC-FREE: Var indices are only minted by push() on this
        // tape, so v.0 < nodes.len() for any Var the caller can hold.
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Registers a constant leaf.
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Registers a trainable parameter leaf, copying its current value from
    /// the store. After `backward`, use [`Graph::accumulate_grads`] to flow
    /// gradients back into the same store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Element-wise sum of two same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Adds a `1 x c` row vector to every row of an `r x c` matrix.
    pub fn add_row(&mut self, m: Var, row: Var) -> Var {
        let mv = &self.nodes[m.0].value;
        let rv = &self.nodes[row.0].value;
        assert_eq!(rv.rows(), 1, "add_row expects a 1 x c row vector");
        assert_eq!(rv.cols(), mv.cols(), "add_row column mismatch");
        let mut out = mv.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c) + rv.get(0, c);
                out.set(r, c, v);
            }
        }
        self.push(out, Op::AddRow(m.0, row.0))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.nodes[a.0].value.scale(alpha);
        self.push(v, Op::Scale(a.0, alpha))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a.0))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.softmax_rows();
        self.push(v, Op::SoftmaxRows(a.0))
    }

    /// Softmax over an `n x 1` column vector.
    pub fn softmax_col(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.cols(), 1, "softmax_col expects an n x 1 column");
        let v = av.transpose().softmax_rows().transpose();
        self.push(v, Op::SoftmaxCol(a.0))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a.0))
    }

    /// Stacks parts vertically.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Tensor::concat_rows(&tensors);
        self.push(v, Op::ConcatRows(parts.iter().map(|p| p.0).collect()))
    }

    /// Stacks parts horizontally.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Tensor::concat_cols(&tensors);
        self.push(v, Op::ConcatCols(parts.iter().map(|p| p.0).collect()))
    }

    /// Rows `[start, start + len)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.nodes[a.0].value.slice_rows(start, len);
        self.push(v, Op::SliceRows(a.0, start, len))
    }

    /// Columns `[start, start + len)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.nodes[a.0].value.slice_cols(start, len);
        self.push(v, Op::SliceCols(a.0, start, len))
    }

    /// Sum of all elements, as a `1 x 1` tensor.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(v, Op::Sum(a.0))
    }

    /// Mean of all elements, as a `1 x 1` tensor.
    pub fn mean(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        let v = Tensor::scalar(t.sum() / t.len() as f32);
        self.push(v, Op::Mean(a.0))
    }

    /// Column-wise mean over rows: `r x c -> 1 x c`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        let (r, c) = t.shape();
        let mut out = Tensor::zeros(1, c);
        for i in 0..r {
            for j in 0..c {
                out.set(0, j, out.get(0, j) + t.get(i, j) / r as f32);
            }
        }
        self.push(out, Op::MeanRows(a.0))
    }

    /// Mean-squared-error loss against a constant target, as `1 x 1`.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let p = &self.nodes[pred.0].value;
        assert_eq!(p.shape(), target.shape(), "mse_loss shape mismatch");
        let n = p.len() as f32;
        let loss = p
            .data()
            .iter()
            .zip(target.data().iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f32>()
            / n;
        self.push(Tensor::scalar(loss), Op::MseLoss(pred.0, target.clone()))
    }

    /// Runs the backward pass from a scalar loss node and returns the
    /// per-node gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "backward requires a scalar loss");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            self.backprop_node(idx, &g, &mut grads);
            grads[idx] = Some(g);
        }
        Gradients { grads }
    }

    fn accum(&self, grads: &mut [Option<Tensor>], idx: usize, delta: Tensor) {
        debug_assert_eq!(
            self.nodes[idx].value.shape(),
            delta.shape(),
            "gradient shape mismatch at node {idx}"
        );
        match &mut grads[idx] {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        match &self.nodes[idx].op {
            Op::Input | Op::Param(_) => {}
            Op::MatMul(a, b) => {
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                self.accum(grads, *a, g.matmul(&bv.transpose()));
                self.accum(grads, *b, av.transpose().matmul(g));
            }
            Op::Add(a, b) => {
                self.accum(grads, *a, g.clone());
                self.accum(grads, *b, g.clone());
            }
            Op::AddRow(m, row) => {
                self.accum(grads, *m, g.clone());
                let mut rg = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        rg.set(0, c, rg.get(0, c) + g.get(r, c));
                    }
                }
                self.accum(grads, *row, rg);
            }
            Op::Sub(a, b) => {
                self.accum(grads, *a, g.clone());
                self.accum(grads, *b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let av = &self.nodes[*a].value;
                let bv = &self.nodes[*b].value;
                self.accum(grads, *a, g.hadamard(bv));
                self.accum(grads, *b, g.hadamard(av));
            }
            Op::Scale(a, alpha) => self.accum(grads, *a, g.scale(*alpha)),
            Op::Sigmoid(a) => {
                let y = &self.nodes[idx].value;
                let d = y.zip(g, |y, g| g * y * (1.0 - y));
                self.accum(grads, *a, d);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[idx].value;
                let d = y.zip(g, |y, g| g * (1.0 - y * y));
                self.accum(grads, *a, d);
            }
            Op::Relu(a) => {
                let x = &self.nodes[*a].value;
                let d = x.zip(g, |x, g| if x > 0.0 { g } else { 0.0 });
                self.accum(grads, *a, d);
            }
            Op::SoftmaxRows(a) => {
                let y = &self.nodes[idx].value;
                self.accum(grads, *a, softmax_backward_rows(y, g));
            }
            Op::SoftmaxCol(a) => {
                let y = self.nodes[idx].value.transpose();
                let gt = g.transpose();
                self.accum(grads, *a, softmax_backward_rows(&y, &gt).transpose());
            }
            Op::Transpose(a) => self.accum(grads, *a, g.transpose()),
            Op::ConcatRows(parts) => {
                let mut start = 0;
                for &p in parts {
                    let rows = self.nodes[p].value.rows();
                    self.accum(grads, p, g.slice_rows(start, rows));
                    start += rows;
                }
            }
            Op::ConcatCols(parts) => {
                let mut start = 0;
                for &p in parts {
                    let cols = self.nodes[p].value.cols();
                    self.accum(grads, p, g.slice_cols(start, cols));
                    start += cols;
                }
            }
            Op::SliceRows(a, start, len) => {
                let src = &self.nodes[*a].value;
                let mut d = Tensor::zeros(src.rows(), src.cols());
                for r in 0..*len {
                    for c in 0..src.cols() {
                        d.set(start + r, c, g.get(r, c));
                    }
                }
                self.accum(grads, *a, d);
            }
            Op::SliceCols(a, start, len) => {
                let src = &self.nodes[*a].value;
                let mut d = Tensor::zeros(src.rows(), src.cols());
                for r in 0..src.rows() {
                    for c in 0..*len {
                        d.set(r, start + c, g.get(r, c));
                    }
                }
                self.accum(grads, *a, d);
            }
            Op::Sum(a) => {
                let src = &self.nodes[*a].value;
                self.accum(grads, *a, Tensor::full(src.rows(), src.cols(), g.item()));
            }
            Op::Mean(a) => {
                let src = &self.nodes[*a].value;
                let d = g.item() / src.len() as f32;
                self.accum(grads, *a, Tensor::full(src.rows(), src.cols(), d));
            }
            Op::MeanRows(a) => {
                let src = &self.nodes[*a].value;
                let (r, c) = src.shape();
                let mut d = Tensor::zeros(r, c);
                for i in 0..r {
                    for j in 0..c {
                        d.set(i, j, g.get(0, j) / r as f32);
                    }
                }
                self.accum(grads, *a, d);
            }
            Op::MseLoss(a, target) => {
                let pred = &self.nodes[*a].value;
                let n = pred.len() as f32;
                let scale = 2.0 * g.item() / n;
                let d = pred.zip(target, |p, t| scale * (p - t));
                self.accum(grads, *a, d);
            }
        }
    }

    /// Adds the gradients of all parameter leaves on this tape into the
    /// store's gradient accumulators (scaled by `weight`, typically
    /// `1 / batch_size`).
    pub fn accumulate_grads(&self, grads: &Gradients, store: &mut ParamStore, weight: f32) {
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Param(id) = node.op {
                if let Some(g) = &grads.grads[idx] {
                    store.grad_mut(id).axpy(weight, g);
                }
            }
        }
    }
}

/// Row-wise softmax Jacobian-vector product: for each row,
/// `dx = y ⊙ (dy − <dy, y>)`.
fn softmax_backward_rows(y: &Tensor, g: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let dot: f32 = y
            .row_slice(r)
            .iter()
            .zip(g.row_slice(r).iter())
            .map(|(&a, &b)| a * b)
            .sum();
        for c in 0..y.cols() {
            out.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn forward_values_are_recorded() {
        let mut g = Graph::new();
        let a = g.input(Tensor::row(&[1.0, 2.0]));
        let b = g.input(Tensor::col(&[3.0, 4.0]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).item(), 11.0);
    }

    #[test]
    fn backward_through_matmul_chain() {
        // loss = sum(a @ b) with a = [1 2], b = [[3],[4]] => dloss/da = b^T, dloss/db = a^T
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let pa = store.register("a", Tensor::row(&[1.0, 2.0]));
        let pb = store.register("b", Tensor::col(&[3.0, 4.0]));
        let a = g.param(&store, pa);
        let b = g.param(&store, pb);
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[1.0, 2.0]);
        g.accumulate_grads(&grads, &mut store, 1.0);
        assert_eq!(store.grad(pa).data(), &[3.0, 4.0]);
    }

    #[test]
    fn gradient_accumulates_when_var_reused() {
        // loss = sum(x + x) => dloss/dx = 2 everywhere
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let px = store.register("x", Tensor::row(&[1.0, -1.0]));
        let x = g.param(&store, px);
        let y = g.add(x, x);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0]);
        g.accumulate_grads(&grads, &mut store, 0.5);
        assert_eq!(store.grad(px).data(), &[1.0, 1.0]);
    }

    #[test]
    fn relu_gates_gradient() {
        let mut g = Graph::new();
        let x = g.input(Tensor::row(&[-1.0, 2.0]));
        let y = g.relu(x);
        let loss = g.sum(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let mut g = Graph::new();
        let x = g.input(Tensor::row(&[1.0, 3.0]));
        let target = Tensor::row(&[0.0, 1.0]);
        let loss = g.mse_loss(x, &target);
        // ((1-0)^2 + (3-1)^2)/2 = 2.5
        assert!((g.value(loss).item() - 2.5).abs() < 1e-6);
        let grads = g.backward(loss);
        // d/dx = 2*(x-t)/n = [1, 2]
        assert_eq!(grads.get(x).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.input(Tensor::row(&[1.0, 2.0]));
        let _ = g.backward(x);
    }

    #[test]
    fn concat_slice_round_trip_gradient() {
        let mut g = Graph::new();
        let a = g.input(Tensor::row(&[1.0, 2.0]));
        let b = g.input(Tensor::row(&[3.0, 4.0]));
        let cat = g.concat_rows(&[a, b]);
        let top = g.slice_rows(cat, 0, 1);
        let loss = g.sum(top);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[1.0, 1.0]);
        // The bottom slice contributes nothing to the loss: its gradient,
        // scattered back through the concat, is identically zero.
        assert_eq!(grads.get(b).unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn sub_and_scale_gradients() {
        // loss = sum(2*(a - b)) => da = 2, db = -2
        let mut g = Graph::new();
        let a = g.input(Tensor::row(&[1.0, 2.0]));
        let b = g.input(Tensor::row(&[3.0, 5.0]));
        let d = g.sub(a, b);
        let d2 = g.scale(d, 2.0);
        let loss = g.sum(d2);
        assert_eq!(g.value(loss).item(), -10.0);
        let grads = g.backward(loss);
        assert_eq!(grads.get(a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(grads.get(b).unwrap().data(), &[-2.0, -2.0]);
    }

    #[test]
    fn softmax_rows_gradient_sums_to_zero_per_row() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, 1.0, -1.0, 0.0]));
        let s = g.softmax_rows(x);
        let first_col = g.slice_cols(s, 0, 1);
        let loss = g.sum(first_col);
        let grads = g.backward(loss);
        let gx = grads.get(x).unwrap();
        for r in 0..2 {
            let row_sum: f32 = gx.row_slice(r).iter().sum();
            assert!(row_sum.abs() < 1e-6, "row {r} grad sum {row_sum}");
        }
    }

    #[test]
    fn transpose_gradient_round_trips() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let t = g.transpose(x);
        assert_eq!(g.value(t).shape(), (3, 2));
        let loss = g.sum(t);
        let grads = g.backward(loss);
        assert_eq!(grads.get(x).unwrap(), &Tensor::full(2, 3, 1.0));
    }

    #[test]
    fn softmax_col_is_distribution_and_differentiable() {
        let mut g = Graph::new();
        let x = g.input(Tensor::col(&[0.0, 1.0, 2.0]));
        let s = g.softmax_col(x);
        let sum: f32 = g.value(s).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        let first = g.slice_rows(s, 0, 1);
        let loss = g.sum(first);
        let grads = g.backward(loss);
        // Gradient of one softmax output w.r.t. logits sums to ~0.
        let gsum: f32 = grads.get(x).unwrap().data().iter().sum();
        assert!(gsum.abs() < 1e-5);
    }
}
