//! Int8 weight quantization and the f32-accumulating i8 matmul kernel.
//!
//! The quantized tier trades a bounded amount of accuracy for a 4x
//! smaller weight footprint: each weight matrix is snapshot once (at
//! freeze / checkpoint-load time, never in the hot loop) into a
//! [`QuantizedMatrix`] — symmetric int8 codes with one f32 scale per
//! *row* of the `k x n` right-hand side, so a row's largest-magnitude
//! entry maps to ±127 and an all-zero row gets scale 0. The matmul
//! kernel [`matmul_q8_into`] folds the row scale into the broadcast
//! left-hand scalar (`a[i][kk] * scale[kk]`) and accumulates in f32, so
//! its structure — and its AVX2 / scalar dispatch, including the
//! `force-scalar` feature and Miri — mirrors [`crate::infer::matmul_into`]
//! exactly; the only new instruction is the i8→f32 lane conversion.
//!
//! Accuracy is a contract, not a hope: per-entry the code round-trips to
//! within half a quantization step (`scale/2 = max_abs(row)/254`), and
//! end-to-end the quantized model path is property-tested against the
//! f32 fast path in `crates/core/tests/quant_infer.rs`, mirroring the
//! 1e-5 tape pin of `prop_infer.rs` at a wider budget.

/// A weight matrix frozen to symmetric int8 codes with per-row scales.
///
/// Layout matches the f32 original: `rows x cols`, row-major. Row `r`
/// dequantizes as `q[r][c] as f32 * scales[r]`.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    q: Vec<i8>,
    scales: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `rows x cols` f32 matrix.
    ///
    /// Symmetric scheme: `scale_r = max_abs(row_r) / 127`, codes are
    /// `round(x / scale_r)` clamped to `[-127, 127]` (−128 is never
    /// produced, keeping the code range symmetric). An all-zero row gets
    /// `scale_r = 0` and all-zero codes, so it round-trips exactly.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn quantize(data: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "quantize input length mismatch");
        telemetry::count("infer.quant.build", 1);
        let mut q = Vec::with_capacity(data.len());
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let amax = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            if amax == 0.0 {
                scales.push(0.0);
                q.extend(std::iter::repeat_n(0i8, cols));
                continue;
            }
            scales.push(amax / 127.0);
            let inv = 127.0 / amax;
            for &x in row {
                q.push((x * inv).round().clamp(-127.0, 127.0) as i8);
            }
        }
        Self { q, scales, rows, cols }
    }

    /// Number of rows (the contraction dimension in [`matmul_q8_into`]).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row dequantization scales (length [`QuantizedMatrix::rows`]).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Raw int8 codes, row-major (length `rows * cols`).
    pub fn codes(&self) -> &[i8] {
        &self.q
    }

    /// Expands the matrix back to f32 (`code * row_scale`). Test and
    /// inspection helper; the inference kernels never materialise this.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.q.len());
        for r in 0..self.rows {
            let s = self.scales[r];
            for &code in &self.q[r * self.cols..(r + 1) * self.cols] {
                out.push(code as f32 * s);
            }
        }
        out
    }
}

/// `out = a @ dequantize(b)` for row-major `a` (`m x k`) and a quantized
/// `b` (`k x n`), accumulating in f32.
///
/// The per-row scale is folded into the broadcast left-hand scalar, so
/// each output element accumulates `(a[i][kk] * scale[kk]) * q[kk][j]`
/// over `kk` in the same order as [`crate::infer::matmul_into`]; on CPUs
/// with AVX2+FMA the contraction is fused exactly like the f32 kernel.
/// `out` must have length `m * n`; it is overwritten.
///
/// # Panics
/// Panics if `b.rows() != k` or `out.len() != m * b.cols()`.
pub fn matmul_q8_into(a: &[f32], m: usize, k: usize, b: &QuantizedMatrix, out: &mut [f32]) {
    // PANIC-FREE: deliberate shape guards, documented under # Panics;
    // every caller passes arena buffers sized from the same
    // QuantizedMatrix, so they cannot fire on the serving path.
    assert_eq!(b.rows(), k, "matmul_q8_into contraction mismatch");
    assert_eq!(a.len(), m * k, "matmul_q8_into lhs length");
    assert_eq!(out.len(), m * b.cols(), "matmul_q8_into out length");
    let _k = telemetry::kernel_span("infer.quant.matmul");
    #[cfg(target_arch = "x86_64")]
    if super::x86::avx2_fma_available() {
        // SAFETY: AVX2+FMA support was verified by the runtime probe on
        // the line above. The shape preconditions (`a.len() == m*k`,
        // `b.codes().len() == k*n`, `out.len() == m*n`) are asserted at
        // entry; the kernel's raw offsets stay in bounds exactly when
        // they hold. No alignment precondition exists: the kernel uses
        // unaligned 8-byte i8 loads and unaligned f32 stores throughout.
        unsafe { x86::matmul_q8_into(a, m, k, b.codes(), b.scales(), b.cols(), out) };
        return;
    }
    matmul_q8_scalar(a, m, k, b.codes(), b.scales(), b.cols(), out);
}

/// Portable i-k-j kernel, accumulating exactly like the scalar f32 path
/// with the row scale folded into the broadcast scalar.
fn matmul_q8_scalar(
    a: &[f32],
    m: usize,
    k: usize,
    bq: &[i8],
    scales: &[f32],
    n: usize,
    out: &mut [f32],
) {
    out.fill(0.0);
    for i in 0..m {
        // PANIC-FREE: i < m and kk < k by loop bounds; the public entry
        // asserted a = m*k, bq = k*n, scales = k, out = m*n, so every
        // range and scales[kk] below is in bounds.
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let avs = av * scales[kk];
            let b_row = &bq[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += avs * bv as f32;
            }
        }
    }
}

/// AVX2+FMA variant of the i8 kernel, dispatched at runtime like the
/// f32 kernels in [`crate::infer`].
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m128i, __m256, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_fmadd_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm_loadl_epi64,
    };

    /// Loads 8 consecutive i8 codes and widens them to f32 lanes.
    ///
    /// # Safety
    /// The CPU must support AVX2 and `p..p+8` must be in bounds — the
    /// 64-bit `_mm_loadl_epi64` reads exactly 8 bytes at an arbitrary
    /// (unaligned) address. `_mm256_cvtepi8_epi32` sign-extends the low
    /// 8 bytes, so codes round-trip exactly (|code| ≤ 127 ≪ 2^24).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn load8_i8_as_f32(p: *const i8) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(p as *const __m128i)))
    }

    /// Register-tiled i8 matmul microkernel: the tiling (64-wide, then
    /// 8-wide, then scalar columns) and accumulation order mirror the
    /// f32 `x86::matmul_into`; the weight stream is i8 and each 8-lane
    /// block is widened with [`load8_i8_as_f32`] at use.
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA (callers check the runtime
    /// probe first), and the lengths must satisfy `a.len() == m*k`,
    /// `bq.len() == k*n`, `scales.len() == k` and `out.len() == m*n` —
    /// every raw offset below (`bp.add(kk*n + j)`, `o.add(j)`) stays in
    /// bounds exactly when those hold, which this function re-asserts in
    /// debug builds. There is **no alignment precondition**: i8 loads go
    /// through the unaligned 64-bit `_mm_loadl_epi64` and stores through
    /// `_mm256_storeu_ps`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_q8_into(
        a: &[f32],
        m: usize,
        k: usize,
        bq: &[i8],
        scales: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        debug_assert_eq!(a.len(), m * k, "matmul_q8_into lhs length");
        debug_assert_eq!(bq.len(), k * n, "matmul_q8_into rhs length");
        debug_assert_eq!(scales.len(), k, "matmul_q8_into scales length");
        debug_assert_eq!(out.len(), m * n, "matmul_q8_into out length");
        let bp = bq.as_ptr();
        for i in 0..m {
            // PANIC-FREE: i < m and kk < k by loop bounds, within the
            // length contract re-asserted above (a = m*k, out = m*n,
            // scales = k); a violated contract panics here instead of
            // feeding the raw-pointer loops below.
            let a_row = &a[i * k..(i + 1) * k];
            let o = out[i * n..(i + 1) * n].as_mut_ptr();
            let mut j = 0;
            while j + 64 <= n {
                let mut acc: [__m256; 8] = [_mm256_setzero_ps(); 8];
                for (kk, &av) in a_row.iter().enumerate() {
                    let avv = _mm256_set1_ps(av * scales[kk]);
                    let brow = bp.add(kk * n + j);
                    for (l, slot) in acc.iter_mut().enumerate() {
                        *slot = _mm256_fmadd_ps(avv, load8_i8_as_f32(brow.add(8 * l)), *slot);
                    }
                }
                for (l, &slot) in acc.iter().enumerate() {
                    _mm256_storeu_ps(o.add(j + 8 * l), slot);
                }
                j += 64;
            }
            while j + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for (kk, &av) in a_row.iter().enumerate() {
                    // PANIC-FREE: kk < k = scales.len(), asserted above.
                    let avv = _mm256_set1_ps(av * scales[kk]);
                    acc = _mm256_fmadd_ps(avv, load8_i8_as_f32(bp.add(kk * n + j)), acc);
                }
                _mm256_storeu_ps(o.add(j), acc);
                j += 8;
            }
            while j < n {
                let mut acc = 0.0f32;
                for (kk, &av) in a_row.iter().enumerate() {
                    // PANIC-FREE: kk < k = scales.len(), asserted above.
                    acc = (av * scales[kk]).mul_add(*bp.add(kk * n + j) as f32, acc);
                }
                *o.add(j) = acc;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn round_trip_err_budget(original: &[f32], qm: &QuantizedMatrix) {
        let deq = qm.dequantize();
        for r in 0..qm.rows() {
            let row = &original[r * qm.cols()..(r + 1) * qm.cols()];
            let half_step = qm.scales()[r] * 0.5 + f32::EPSILON;
            for (c, (&x, &y)) in row.iter().zip(&deq[r * qm.cols()..]).enumerate() {
                assert!(
                    (x - y).abs() <= half_step,
                    "row {r} col {c}: {x} round-tripped to {y} (step {half_step})"
                );
            }
        }
    }

    #[test]
    fn round_trip_random_matrix_within_half_step() {
        let mut rng = StdRng::seed_from_u64(17);
        let (rows, cols) = (13, 29);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let qm = QuantizedMatrix::quantize(&data, rows, cols);
        round_trip_err_budget(&data, &qm);
    }

    #[test]
    fn max_magnitude_entries_round_trip_exactly() {
        // The largest-magnitude entry of each row maps to ±127 exactly,
        // so amax must survive the round trip bit-for-bit up to the
        // scale multiplication.
        let data = vec![1.0, -4.0, 2.0, 0.5, 0.25, -0.125];
        let qm = QuantizedMatrix::quantize(&data, 2, 3);
        let deq = qm.dequantize();
        assert_eq!(deq[1], -4.0, "row-0 amax");
        assert_eq!(deq[3], 0.5, "row-1 amax");
        // And codes saturate at the symmetric bound.
        assert!(qm.codes().iter().all(|&c| (-127..=127).contains(&c)));
    }

    #[test]
    fn all_zero_rows_get_zero_scale_and_exact_round_trip() {
        let data = vec![0.0; 12];
        let qm = QuantizedMatrix::quantize(&data, 3, 4);
        assert_eq!(qm.scales(), &[0.0, 0.0, 0.0]);
        assert!(qm.dequantize().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn single_element_tensor_round_trips_exactly() {
        for v in [0.0f32, 1.0, -1.0, 1e-20, -3.5e4] {
            let qm = QuantizedMatrix::quantize(&[v], 1, 1);
            assert_eq!(qm.dequantize()[0], v, "single element {v}");
        }
    }

    #[test]
    fn mixed_zero_and_nonzero_rows() {
        let data = vec![0.0, 0.0, 0.0, 2.0, -1.0, 0.5];
        let qm = QuantizedMatrix::quantize(&data, 2, 3);
        assert_eq!(qm.scales()[0], 0.0);
        assert!(qm.scales()[1] > 0.0);
        round_trip_err_budget(&data, &qm);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_input_length() {
        let _ = QuantizedMatrix::quantize(&[1.0, 2.0], 2, 2);
    }

    #[test]
    fn matmul_q8_tracks_dequantized_f32_matmul() {
        // The quantized kernel must agree with an f32 matmul over the
        // *dequantized* weights to FMA-level precision — quantization
        // error lives entirely in the codes, not the kernel.
        let mut rng = StdRng::seed_from_u64(23);
        let (m, k, n) = (5, 67, 139);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let qm = QuantizedMatrix::quantize(&b, k, n);
        let deq = qm.dequantize();
        let mut want = vec![f32::NAN; m * n];
        crate::infer::matmul_into(&a, m, k, &deq, n, &mut want);
        let mut got = vec![f32::NAN; m * n];
        matmul_q8_into(&a, m, k, &qm, &mut got);
        for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
            assert!((g - w).abs() <= 2e-4 * w.abs().max(1.0), "elem {i}: got {g}, want {w}");
        }
    }

    #[test]
    fn simd_and_scalar_kernels_agree() {
        let mut rng = StdRng::seed_from_u64(29);
        let (m, k, n) = (3, 41, 77);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.5f32..1.5)).collect();
        let qm = QuantizedMatrix::quantize(&b, k, n);
        let mut dispatched = vec![f32::NAN; m * n];
        matmul_q8_into(&a, m, k, &qm, &mut dispatched);
        let mut scalar = vec![f32::NAN; m * n];
        matmul_q8_scalar(&a, m, k, qm.codes(), qm.scales(), n, &mut scalar);
        for (i, (&g, &w)) in dispatched.iter().zip(scalar.iter()).enumerate() {
            assert!((g - w).abs() <= 1e-5 * w.abs().max(1.0), "elem {i}: simd {g}, scalar {w}");
        }
    }

    #[test]
    fn matmul_q8_single_column_exercises_scalar_tail() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        let qm = QuantizedMatrix::quantize(&b, 3, 1);
        let mut out = vec![f32::NAN; 1];
        matmul_q8_into(&a, 1, 3, &qm, &mut out);
        // 1*4 + 2*5 + 3*6 = 32; exact because 4, 5, 6 quantize exactly
        // only when they are each a row's amax — they are (1 col each).
        assert!((out[0] - 32.0).abs() <= 1e-5);
    }
}
