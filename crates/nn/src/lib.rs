//! # nn — a small, verifiable neural-network substrate
//!
//! Pure-Rust reverse-mode automatic differentiation plus the layers needed
//! by the RAAL cost model of *"A Resource-Aware Deep Cost Model for Big
//! Data Query Processing"* (ICDE 2022): dense layers, an LSTM cell, a 1-D
//! convolution (for the RAAC ablation) and dot-product attention primitives
//! (for the node-aware and resource-aware attention layers). The [`infer`]
//! module provides a tape-free SIMD fast path for each layer that tracks
//! the tape's values to ~1e-6 without recording gradient state.
//!
//! Design goals, in order:
//! 1. **Verifiability** — every backward rule is checked against central
//!    finite differences ([`gradcheck`]).
//! 2. **Define-by-run** — query plans have variable length, so each sample
//!    builds a fresh [`graph::Graph`] tape over shared [`params::ParamStore`]
//!    weights.
//! 3. **Smallness** — the paper's latent dimension is K = 32; plain
//!    row-major `f32` matrices are fast enough and easy to audit.
//!
//! ```
//! use nn::graph::Graph;
//! use nn::params::ParamStore;
//! use nn::tensor::Tensor;
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", Tensor::scalar(0.0));
//! let mut g = Graph::new();
//! let wv = g.param(&store, w);
//! let loss = g.mse_loss(wv, &Tensor::scalar(1.0));
//! let grads = g.backward(loss);
//! assert_eq!(grads.get(wv).unwrap().item(), -2.0);
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod graph;
pub mod infer;
pub mod init;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tensor;

pub use graph::{Gradients, Graph, Var};
pub use infer::quant::QuantizedMatrix;
pub use infer::{ArenaStats, InferArena};
pub use params::{ParamId, ParamStore};
pub use tensor::Tensor;
