//! Finite-difference gradient checking.
//!
//! The only way to trust hand-written backward rules is to compare them to
//! central differences. Every op and layer in this crate is validated this
//! way; the checker is exported so downstream model code (RAAL, TLSTM) can
//! verify its composite architectures too.

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};

/// Result of a gradient check: the worst relative error observed and where.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across all checked weights.
    pub max_rel_error: f32,
    /// Parameter name holding the worst weight.
    pub worst_param: String,
    /// Flat index of the worst weight within that parameter.
    pub worst_index: usize,
    /// Number of scalar weights checked.
    pub checked: usize,
}

/// Compares analytic gradients against central finite differences for every
/// weight of every parameter in `store`.
///
/// `build` must construct the loss graph from scratch (define-by-run) on
/// each call; it is invoked `2 * num_weights + 1` times. Returns a report;
/// use [`assert_gradients_close`] in tests.
pub fn check_gradients<F>(store: &mut ParamStore, build: F, eps: f32) -> GradCheckReport
where
    F: Fn(&mut Graph, &ParamStore) -> Var,
{
    // Analytic pass.
    store.zero_grads();
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    let grads = g.backward(loss);
    g.accumulate_grads(&grads, store, 1.0);

    let ids: Vec<ParamId> = store.ids().collect();
    let mut report = GradCheckReport {
        max_rel_error: 0.0,
        worst_param: String::new(),
        worst_index: 0,
        checked: 0,
    };

    for id in ids {
        let n = store.value(id).len();
        for i in 0..n {
            let orig = store.value(id).data()[i];
            store.value_mut(id).data_mut()[i] = orig + eps;
            let plus = eval_loss(store, &build);
            store.value_mut(id).data_mut()[i] = orig - eps;
            let minus = eval_loss(store, &build);
            store.value_mut(id).data_mut()[i] = orig;

            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = store.grad(id).data()[i];
            let denom = numeric.abs().max(analytic.abs()).max(1e-2);
            let rel = (numeric - analytic).abs() / denom;
            report.checked += 1;
            if rel > report.max_rel_error {
                report.max_rel_error = rel;
                report.worst_param = store.name(id).to_string();
                report.worst_index = i;
            }
        }
    }
    report
}

fn eval_loss<F>(store: &ParamStore, build: &F) -> f32
where
    F: Fn(&mut Graph, &ParamStore) -> Var,
{
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    g.value(loss).item()
}

/// Panics with a descriptive message when any analytic gradient deviates
/// from its finite-difference estimate by more than `tol` (relative).
pub fn assert_gradients_close<F>(store: &mut ParamStore, build: F, eps: f32, tol: f32)
where
    F: Fn(&mut Graph, &ParamStore) -> Var,
{
    let report = check_gradients(store, build, eps);
    assert!(
        report.max_rel_error <= tol,
        "gradient check failed: rel error {} at {}[{}] ({} weights checked)",
        report.max_rel_error,
        report.worst_param,
        report.worst_index,
        report.checked
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Conv1d, Dense, LstmCell};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f32 = 5e-3;
    const TOL: f32 = 2e-2;

    #[test]
    fn gradcheck_matmul_sigmoid_chain() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let w1 = store.register("w1", crate::init::xavier_uniform(&mut rng, 3, 4));
        let w2 = store.register("w2", crate::init::xavier_uniform(&mut rng, 4, 1));
        assert_gradients_close(
            &mut store,
            move |g, s| {
                let x = g.input(Tensor::row(&[0.3, -0.6, 0.9]));
                let a = g.param(s, w1);
                let b = g.param(s, w2);
                let h = g.matmul(x, a);
                let h = g.sigmoid(h);
                let y = g.matmul(h, b);
                g.mse_loss(y, &Tensor::scalar(0.7))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn gradcheck_softmax_attention() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(13);
        let q = store.register("q", crate::init::xavier_uniform(&mut rng, 1, 4));
        let k = store.register("k", crate::init::xavier_uniform(&mut rng, 3, 4));
        let v = store.register("v", crate::init::xavier_uniform(&mut rng, 3, 2));
        assert_gradients_close(
            &mut store,
            move |g, s| {
                let qv = g.param(s, q);
                let kv = g.param(s, k);
                let vv = g.param(s, v);
                let ctx = crate::layers::dot_attention(g, qv, kv, vv);
                g.mse_loss(ctx, &Tensor::row(&[0.1, -0.2]))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn gradcheck_dense_relu_stack() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(17);
        let d1 = Dense::new(&mut store, &mut rng, "d1", 4, 6, Activation::Relu);
        let d2 = Dense::new(&mut store, &mut rng, "d2", 6, 1, Activation::Identity);
        assert_gradients_close(
            &mut store,
            move |g, s| {
                let x = g.input(Tensor::row(&[0.25, -0.5, 0.75, 0.1]));
                let h = d1.forward(g, s, x);
                let y = d2.forward(g, s, h);
                g.mse_loss(y, &Tensor::scalar(0.3))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn gradcheck_lstm_sequence() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(19);
        let cell = LstmCell::new(&mut store, &mut rng, "lstm", 3, 4);
        assert_gradients_close(
            &mut store,
            move |g, s| {
                let xs = g.input(Tensor::from_vec(
                    3,
                    3,
                    vec![0.2, -0.1, 0.4, 0.0, 0.3, -0.5, 0.6, 0.1, -0.2],
                ));
                let hs = cell.forward_seq(g, s, xs);
                let pooled = g.mean_rows(hs);
                g.mse_loss(pooled, &Tensor::row(&[0.1, 0.0, -0.1, 0.2]))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn gradcheck_conv1d_sequence() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(23);
        let conv = Conv1d::new(&mut store, &mut rng, "conv", 3, 2, 3);
        assert_gradients_close(
            &mut store,
            move |g, s| {
                let xs = g.input(Tensor::from_vec(
                    4,
                    3,
                    vec![0.2, -0.1, 0.4, 0.0, 0.3, -0.5, 0.6, 0.1, -0.2, 0.3, 0.3, 0.1],
                ));
                let ys = conv.forward_seq(g, s, xs);
                let pooled = g.mean_rows(ys);
                g.mse_loss(pooled, &Tensor::row(&[0.1, -0.1]))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn gradcheck_mean_rows_and_concat() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(29);
        let a = store.register("a", crate::init::xavier_uniform(&mut rng, 2, 3));
        let b = store.register("b", crate::init::xavier_uniform(&mut rng, 1, 3));
        assert_gradients_close(
            &mut store,
            move |g, s| {
                let av = g.param(s, a);
                let bv = g.param(s, b);
                let cat = g.concat_rows(&[av, bv]);
                let t = g.tanh(cat);
                let pooled = g.mean_rows(t);
                g.mse_loss(pooled, &Tensor::row(&[0.0, 0.1, -0.1]))
            },
            EPS,
            TOL,
        );
    }
}
