//! Dense row-major 2-D tensors of `f32`.
//!
//! Everything in the RAAL model is small (latent dimension K = 32, plan
//! sequences of at most a few dozen nodes), so a simple contiguous `Vec<f32>`
//! with explicit shapes outperforms anything fancier and keeps the autograd
//! engine easy to verify against finite differences.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`. Vectors are represented as `1 x n`
/// (row) or `n x 1` (column) matrices.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "shape {}x{} does not match data length {}",
            rows,
            cols,
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Creates a `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts the single element of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix product `self @ rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order: streams through `rhs` rows, cache friendly.
        // Deliberately branch-free: a zero-skip test on `a` costs an
        // unpredictable branch per inner row and blocks vectorisation,
        // which is a net loss on the mostly-dense activations seen here
        // (adding `0.0 * b` leaves the f32 accumulation unchanged).
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                let b_row = &rhs.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(m, n, out)
    }

    /// Transposed copy. Processes square blocks so both the source reads
    /// and destination writes stay within a few cache lines, instead of
    /// striding the full output column-by-column.
    pub fn transpose(&self) -> Tensor {
        const BLOCK: usize = 32;
        let mut out = Tensor::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(BLOCK) {
            let r_end = (rb + BLOCK).min(self.rows);
            for cb in (0..self.cols).step_by(BLOCK) {
                let c_end = (cb + BLOCK).min(self.cols);
                for r in rb..r_end {
                    for c in cb..c_end {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary combination into a new tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += alpha * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| alpha * x)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Fills the tensor with zeros, keeping its allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Vertical concatenation (stacking rows).
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows of zero tensors");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// Horizontal concatenation (side by side).
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols row mismatch");
                data.extend_from_slice(p.row_slice(r));
            }
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// Copy of rows `[start, start + len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "slice_rows out of range");
        Tensor::from_vec(
            len,
            self.cols,
            self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        )
    }

    /// Copy of columns `[start, start + len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            let row = self.row_slice(r);
            data.extend_from_slice(&row[start..start + len]);
        }
        Tensor::from_vec(self.rows, len, data)
    }

    /// Numerically stable softmax applied independently to each row.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        out
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row_slice(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match data length")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![3., -1., 0.5, 2.]);
        let i = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn transpose_beyond_one_block() {
        // Shape chosen to exercise partial edge blocks in both axes.
        let (r, c) = (70, 33);
        let t = Tensor::from_vec(r, c, (0..r * c).map(|i| i as f32).collect());
        let tt = t.transpose();
        assert_eq!(tt.shape(), (c, r));
        for i in 0..r {
            for j in 0..c {
                assert_eq!(tt.get(j, i), t.get(i, j));
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::row(&[1., 2., 3.]);
        let b = Tensor::row(&[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.hadamard(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn concat_and_slice_are_inverse() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(2, 3, vec![4., 5., 6., 7., 8., 9.]);
        let cat = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 3));
        assert_eq!(cat.slice_rows(0, 1), a);
        assert_eq!(cat.slice_rows(1, 2), b);

        let c = Tensor::from_vec(2, 1, vec![10., 20.]);
        let d = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let side = Tensor::concat_cols(&[&c, &d]);
        assert_eq!(side.data(), &[10., 1., 2., 20., 3., 4.]);
        assert_eq!(side.slice_cols(0, 1), c);
        assert_eq!(side.slice_cols(1, 2), d);
    }

    #[test]
    fn softmax_rows_is_a_distribution() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 1000., 1000., 1000.]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs must not overflow (stability shift).
        assert!(s.all_finite());
        // Row of equal logits -> uniform.
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(1, 3);
        a.axpy(2.0, &Tensor::row(&[1., 2., 3.]));
        assert_eq!(a.data(), &[2., 4., 6.]);
    }
}
