//! Named trainable parameters with gradient accumulators and optimizer
//! state, shared across the per-sample tapes built by [`crate::graph::Graph`].

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

#[derive(Clone, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Tensor,
    #[serde(skip, default = "empty_tensor")]
    grad: Tensor,
    /// Adam first-moment estimate.
    #[serde(skip, default = "empty_tensor")]
    m: Tensor,
    /// Adam second-moment estimate.
    #[serde(skip, default = "empty_tensor")]
    v: Tensor,
}

fn empty_tensor() -> Tensor {
    Tensor::zeros(0, 0)
}

/// Holds every trainable tensor of a model, its accumulated gradient and
/// its optimizer moments. Serialisable (values only) for checkpointing.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(ParamEntry {
            name: name.into(),
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        // PANIC-FREE: ParamId values are only minted by register() on
        // this store, so id.0 < params.len() for any id a caller holds.
        &self.params[id.0].name
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        // PANIC-FREE: same ParamId minting argument as name().
        &self.params[id.0].value
    }

    /// Mutable value (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Mutable accumulated gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].grad
    }

    /// All parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Resets every gradient accumulator to zero (start of a batch).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= s;
                }
            }
        }
    }

    /// Re-initialises optimizer state after deserialisation (`grad`/`m`/`v`
    /// are not checkpointed).
    pub fn restore_state(&mut self) {
        for p in &mut self.params {
            let (r, c) = p.value.shape();
            if p.grad.shape() != (r, c) {
                p.grad = Tensor::zeros(r, c);
                p.m = Tensor::zeros(r, c);
                p.v = Tensor::zeros(r, c);
            }
        }
    }

    pub(crate) fn entry_mut(
        &mut self,
        id: ParamId,
    ) -> (&mut Tensor, &Tensor, &mut Tensor, &mut Tensor) {
        let e = &mut self.params[id.0];
        (&mut e.value, &e.grad, &mut e.m, &mut e.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::row(&[1.0, 2.0]));
        assert_eq!(s.name(id), "w");
        assert_eq!(s.value(id).data(), &[1.0, 2.0]);
        assert_eq!(s.grad(id).data(), &[0.0, 0.0]);
        assert_eq!(s.num_weights(), 2);
    }

    #[test]
    fn zero_grads_clears_accumulators() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::row(&[1.0]));
        s.grad_mut(id).axpy(1.0, &Tensor::row(&[5.0]));
        assert_eq!(s.grad(id).data(), &[5.0]);
        s.zero_grads();
        assert_eq!(s.grad(id).data(), &[0.0]);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut s = ParamStore::new();
        let a = s.register("a", Tensor::row(&[3.0]));
        let b = s.register("b", Tensor::row(&[4.0]));
        s.grad_mut(a).axpy(1.0, &Tensor::row(&[3.0]));
        s.grad_mut(b).axpy(1.0, &Tensor::row(&[4.0]));
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
        let before = s.grad_norm();
        s.clip_grad_norm(10.0); // already below the cap: unchanged
        assert!((s.grad_norm() - before).abs() < 1e-7);
    }

    #[test]
    fn serde_round_trip_preserves_values() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let json = serde_json::to_string(&s).unwrap();
        let mut back: ParamStore = serde_json::from_str(&json).unwrap();
        back.restore_state();
        assert_eq!(back.value(id), s.value(id));
        assert_eq!(back.grad(id).shape(), (2, 2));
    }
}
