//! First-order optimizers operating on a [`ParamStore`].

use crate::params::ParamStore;

/// Plain stochastic gradient descent with optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient (0 disables it).
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate and no decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }

    /// Applies one update `w ← w − lr · (g + wd · w)` to every parameter,
    /// consuming the accumulated gradients (which are then zeroed).
    pub fn step(&self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        for id in ids {
            let (value, grad, _m, _v) = store.entry_mut(id);
            let lr = self.lr;
            let wd = self.weight_decay;
            for (w, &g) in value.data_mut().iter_mut().zip(grad.data().iter()) {
                *w -= lr * (g + wd * *w);
            }
        }
        store.zero_grads();
    }
}

/// Adam (Kingma & Ba) with bias correction, the optimizer the paper's
/// PyTorch implementation would default to.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay coefficient (0 disables it).
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with standard moments (0.9 / 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to every parameter, consuming the
    /// accumulated gradients (which are then zeroed).
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.ids().collect();
        for id in ids {
            let (value, grad, m, v) = store.entry_mut(id);
            for i in 0..value.len() {
                let g = grad.data()[i] + self.weight_decay * value.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                value.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// Minimises (w - 3)^2; both optimizers must converge to w = 3.
    fn quadratic_descent(use_adam: bool) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(0.0));
        let mut adam = Adam::new(0.1);
        let sgd = Sgd::new(0.1);
        for _ in 0..300 {
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let loss = g.mse_loss(wv, &Tensor::scalar(3.0));
            let grads = g.backward(loss);
            g.accumulate_grads(&grads, &mut store, 1.0);
            if use_adam {
                adam.step(&mut store);
            } else {
                sgd.step(&mut store);
            }
        }
        store.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!((quadratic_descent(false) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!((quadratic_descent(true) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(1.0));
        store.grad_mut(w).axpy(1.0, &Tensor::scalar(2.0));
        Sgd::new(0.1).step(&mut store);
        assert_eq!(store.grad(w).data(), &[0.0]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::scalar(10.0));
        let sgd = Sgd { lr: 0.1, weight_decay: 0.5 };
        // Zero gradient: only decay acts.
        sgd.step(&mut store);
        assert!((store.value(w).item() - 9.5).abs() < 1e-6);
    }
}
