//! Tape-free inference kernels.
//!
//! The autograd tape in [`crate::graph`] records an `Op` node (and clones
//! a tensor) for every primitive, which is what training needs and
//! exactly what inference does not: a forward-only pass through the RAAL
//! model allocates dozens of small tensors per plan just to throw them
//! away. The kernels here compute the same math without recording
//! anything, and use arithmetic the tape deliberately avoids so a single
//! prediction runs several times faster than the reference forward pass:
//!
//! * [`matmul_into`] dispatches at runtime to a register-tiled AVX2+FMA
//!   microkernel on x86-64 (scalar branch-free loops elsewhere);
//! * the LSTM gate activations go through [`fast_exp`], a branch-free
//!   Cephes-style polynomial `exp` whose element loops auto-vectorise.
//!
//! Per-element accumulation *order* still matches the corresponding
//! graph ops, so the only divergence from the tape is FMA contraction
//! and the polynomial `exp` (each ~1e-7 relative). End-to-end agreement
//! within 1e-5 relative error is the property-tested contract
//! (`crates/core/tests/prop_infer.rs`); the tape path remains the exact
//! IEEE-ordered reference used by training.
//!
//! Scratch space comes from an [`InferArena`], a free-list of `Vec<f32>`
//! buffers that callers `take` and `give` back; a steady-state prediction
//! loop performs no heap allocation at all.

use crate::layers::Activation;

pub mod quant;

/// A recycling pool of `f32` scratch buffers for tape-free inference.
///
/// `take(len)` hands out a zeroed buffer of the requested length, reusing
/// a previously returned allocation when one is available (capacity is
/// kept across uses, so a steady-state inference loop stops allocating
/// after the first pass). Buffers are returned with [`InferArena::give`];
/// forgetting to return one is not an error, it just costs a future
/// allocation.
///
/// The arena keeps allocation statistics ([`InferArena::stats`]) so
/// callers — the serving layer in particular — can assert that a warmed
/// loop has genuinely stopped touching the heap.
#[derive(Debug, Default)]
pub struct InferArena {
    free: Vec<Vec<f32>>,
    takes: u64,
    fresh_allocs: u64,
    high_water_len: usize,
}

/// Allocation statistics of an [`InferArena`], read via
/// [`InferArena::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total number of `take` calls.
    pub takes: u64,
    /// `take` calls that had to touch the heap (empty free list, or a
    /// pooled buffer whose capacity was below the requested length).
    pub fresh_allocs: u64,
    /// Largest buffer length ever requested — the scratch high-water mark.
    pub high_water_len: usize,
    /// Buffers currently sitting in the free list.
    pub pooled: usize,
}

/// Upper bound on pooled buffers, so a pathological caller cannot grow
/// the free list without bound.
const MAX_POOLED: usize = 64;

impl InferArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled buffer of length `len`.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.takes += 1;
        self.high_water_len = self.high_water_len.max(len);
        match self.free.pop() {
            Some(mut buf) => {
                if buf.capacity() < len {
                    self.note_fresh_alloc();
                }
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.note_fresh_alloc();
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if self.free.len() < MAX_POOLED {
            // HOT-ALLOC: the free-list grows to at most MAX_POOLED slots
            // during warmup and then reuses them; steady state reclaims
            // buffers without touching the allocator.
            self.free.push(buf);
        }
    }

    /// Current allocation statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            takes: self.takes,
            fresh_allocs: self.fresh_allocs,
            high_water_len: self.high_water_len,
            pooled: self.free.len(),
        }
    }

    fn note_fresh_alloc(&mut self) {
        self.fresh_allocs += 1;
        telemetry::count("infer.arena.alloc", 1);
    }
}

/// `out = a @ b` for row-major `a` (`m x k`) and `b` (`k x n`).
///
/// Each output element accumulates over `k` in the same order as
/// [`crate::tensor::Tensor::matmul`]; on CPUs with AVX2+FMA (detected at
/// runtime) the products are contracted with fused multiply-adds, so the
/// result can differ from the tape in the last bits (~1e-7 relative).
/// `out` must have length `m * n`; it is overwritten.
pub fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k, "matmul_into lhs length");
    debug_assert_eq!(b.len(), k * n, "matmul_into rhs length");
    debug_assert_eq!(out.len(), m * n, "matmul_into out length");
    // Aggregates into a histogram only; a single relaxed load when
    // telemetry is off, so the hot path stays unperturbed.
    let _k = telemetry::kernel_span("nn.matmul");
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_fma_available() {
        // SAFETY: AVX2+FMA support was verified by the runtime probe on
        // the line above. The length preconditions (`a.len() == m*k`,
        // `b.len() == k*n`, `out.len() == m*n`) are this function's own
        // documented contract, debug-asserted at entry and re-asserted
        // inside the kernel. No alignment precondition exists: the
        // kernel uses unaligned loads/stores throughout.
        unsafe { x86::matmul_into(a, m, k, b, n, out) };
        return;
    }
    matmul_into_scalar(a, m, k, b, n, out);
}

/// Portable branch-free i-k-j matmul, accumulating exactly like
/// [`crate::tensor::Tensor::matmul`].
fn matmul_into_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    out.fill(0.0);
    for i in 0..m {
        // PANIC-FREE: i < m and kk < k by loop bounds, so every range
        // below is within the documented (debug-asserted) lengths
        // a = m*k, b = k*n, out = m*n; violating that contract panics by
        // design rather than reading out of bounds.
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Plain in-order dot product (matches a `m x 1` matmul's accumulation).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// In-place `out += alpha * x`.
#[inline]
pub fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len(), "axpy length mismatch");
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o += alpha * v;
    }
}

/// Numerically stable in-place softmax over a slice, with the same
/// max-shift / exp / running-sum / divide order as
/// [`crate::tensor::Tensor::softmax_rows`]. Uses libm `exp` (attention
/// score vectors are short, so exactness is cheap here).
pub fn softmax_inplace(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        // PANIC-FREE: f32 division cannot panic (0/0 yields NaN, not a
        // trap); sum >= 1 whenever xs is non-empty since exp(0) = 1 for
        // the max element.
        *x /= sum;
    }
}

/// Logistic sigmoid, identical to the graph op's formula (libm `exp`).
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Branch-free polynomial `exp` (the Cephes `expf` scheme): reduce to
/// `exp(x) = 2^n * exp(f)` with `|f| <= ln(2)/2`, evaluate a degree-5
/// minimax polynomial for `exp(f)`, and rebuild `2^n` with exponent bit
/// arithmetic. Rounding to the nearest integer uses the `+1.5*2^23`
/// trick instead of `round()` (a libm call below SSE4.1), so the whole
/// function is straight-line float ops and element loops over it
/// auto-vectorise. Relative error is ~2e-7; the input is clamped to
/// ±87.34, so the result saturates instead of overflowing.
#[inline(always)]
#[allow(clippy::excessive_precision)] // Cephes constants kept verbatim
pub fn fast_exp(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // ln(2) split hi/lo so `x - n*ln2` stays accurate (Cephes constants).
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5 * 2^23: adding then subtracting rounds to the nearest integer.
    const RND: f32 = 12_582_912.0;
    let x = x.clamp(-87.336_54, 87.336_54);
    let n = (x * LOG2E + RND) - RND;
    let f = (x - n * LN2_HI) - n * LN2_LO;
    let mut p = 1.987_569_15e-4_f32;
    p = p * f + 1.398_199_9e-3;
    p = p * f + 8.333_452e-3;
    p = p * f + 4.166_579_6e-2;
    p = p * f + 1.666_666_5e-1;
    p = p * f + 5.000_000_2e-1;
    let r = (p * f * f + f) + 1.0;
    let scale = f32::from_bits(((n as i32 + 127) as u32) << 23);
    r * scale
}

/// Sigmoid via [`fast_exp`] (~1e-7 absolute error).
#[inline(always)]
pub fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// Tanh via [`fast_exp`] (~1e-7 absolute error).
#[inline(always)]
pub fn fast_tanh(x: f32) -> f32 {
    let e = fast_exp(2.0 * x);
    // PANIC-FREE: f32 division cannot panic; e >= 0, so the denominator
    // is at least 1.
    (e - 1.0) / (e + 1.0)
}

/// In-place sigmoid over a slice using [`fast_sigmoid`], 8-wide under
/// AVX2 where available.
pub fn sigmoid_slice(xs: &mut [f32]) {
    let _k = telemetry::kernel_span("nn.sigmoid");
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_fma_available() {
        // SAFETY: AVX2+FMA support was verified by the runtime probe on
        // the line above — the only precondition; the body is safe slice
        // iteration with no pointer arithmetic.
        unsafe { x86::sigmoid_slice(xs) };
        return;
    }
    for x in xs.iter_mut() {
        *x = fast_sigmoid(*x);
    }
}

/// In-place tanh over a slice using [`fast_tanh`], 8-wide under AVX2
/// where available.
pub fn tanh_slice(xs: &mut [f32]) {
    let _k = telemetry::kernel_span("nn.tanh");
    #[cfg(target_arch = "x86_64")]
    if x86::avx2_fma_available() {
        // SAFETY: AVX2+FMA support was verified by the runtime probe on
        // the line above — the only precondition; the body is safe slice
        // iteration with no pointer arithmetic.
        unsafe { x86::tanh_slice(xs) };
        return;
    }
    for x in xs.iter_mut() {
        *x = fast_tanh(*x);
    }
}

/// Applies an activation in place. Relu and Identity are exact; Sigmoid
/// and Tanh go through the fast polynomial kernels (~1e-7 absolute).
pub fn activate(xs: &mut [f32], act: Activation) {
    match act {
        Activation::Identity => {}
        Activation::Relu => {
            for x in xs.iter_mut() {
                *x = x.max(0.0);
            }
        }
        Activation::Sigmoid => sigmoid_slice(xs),
        Activation::Tanh => tanh_slice(xs),
    }
}

/// x86-64 AVX2+FMA variants of the hot kernels, dispatched at runtime.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// Whether this CPU has AVX2 and FMA (`std` caches the CPUID probe).
    ///
    /// Always `false` under Miri (the interpreter cannot execute vendor
    /// intrinsics) and under the `force-scalar` feature, which pins the
    /// portable kernels for sanitizer and differential-testing runs.
    #[inline]
    pub fn avx2_fma_available() -> bool {
        if cfg!(miri) || cfg!(feature = "force-scalar") {
            return false;
        }
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    /// Register-tiled matmul microkernel: 64 output columns live in
    /// eight YMM accumulators across the whole `k` loop, so the only
    /// streaming traffic is the weight matrix itself. Per-element
    /// accumulation order equals the scalar kernel's; only FMA
    /// contraction differs.
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA (callers check
    /// [`avx2_fma_available`] first), and the lengths must satisfy
    /// `a.len() == m*k`, `b.len() == k*n` and `out.len() == m*n` —
    /// every raw offset below (`bp.add(kk*n + j)`, `o.add(j)`) stays in
    /// bounds exactly when those hold, which this function re-asserts in
    /// debug builds. There is **no alignment precondition**: all vector
    /// memory traffic uses `_mm256_loadu_ps`/`_mm256_storeu_ps`, which
    /// accept arbitrary addresses.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_into(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k, "matmul_into lhs length");
        debug_assert_eq!(b.len(), k * n, "matmul_into rhs length");
        debug_assert_eq!(out.len(), m * n, "matmul_into out length");
        let bp = b.as_ptr();
        for i in 0..m {
            // PANIC-FREE: i < m, so both row ranges sit inside the
            // documented a = m*k / out = m*n length contract re-asserted
            // above; a violated contract panics here instead of feeding
            // the raw-pointer loops below.
            let a_row = &a[i * k..(i + 1) * k];
            let o = out[i * n..(i + 1) * n].as_mut_ptr();
            let mut j = 0;
            while j + 64 <= n {
                let mut acc: [__m256; 8] = [_mm256_setzero_ps(); 8];
                for (kk, &av) in a_row.iter().enumerate() {
                    let avv = _mm256_set1_ps(av);
                    let brow = bp.add(kk * n + j);
                    for (l, slot) in acc.iter_mut().enumerate() {
                        *slot = _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow.add(8 * l)), *slot);
                    }
                }
                for (l, &slot) in acc.iter().enumerate() {
                    _mm256_storeu_ps(o.add(j + 8 * l), slot);
                }
                j += 64;
            }
            while j + 8 <= n {
                let mut acc = _mm256_setzero_ps();
                for (kk, &av) in a_row.iter().enumerate() {
                    acc = _mm256_fmadd_ps(
                        _mm256_set1_ps(av),
                        _mm256_loadu_ps(bp.add(kk * n + j)),
                        acc,
                    );
                }
                _mm256_storeu_ps(o.add(j), acc);
                j += 8;
            }
            while j < n {
                let mut acc = 0.0f32;
                for (kk, &av) in a_row.iter().enumerate() {
                    acc = av.mul_add(*bp.add(kk * n + j), acc);
                }
                *o.add(j) = acc;
                j += 1;
            }
        }
    }

    /// # Safety
    /// The CPU must support AVX2+FMA (callers check
    /// [`avx2_fma_available`] first) — the only precondition. The body
    /// is the scalar loop over a safe slice (no raw pointers, so no
    /// length or alignment obligations); compiling it with these
    /// features lets LLVM vectorise `fast_sigmoid` 8-wide.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sigmoid_slice(xs: &mut [f32]) {
        for x in xs.iter_mut() {
            *x = super::fast_sigmoid(*x);
        }
    }

    /// # Safety
    /// The CPU must support AVX2+FMA (see [`sigmoid_slice`]); no other
    /// preconditions — safe slice iteration only.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tanh_slice(xs: &mut [f32]) {
        for x in xs.iter_mut() {
            *x = super::fast_tanh(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn arena_recycles_capacity() {
        let mut arena = InferArena::new();
        let mut buf = arena.take(8);
        buf[0] = 5.0;
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        arena.give(buf);
        let again = arena.take(4);
        assert_eq!(again.as_ptr(), ptr, "allocation was reused");
        assert!(again.capacity() >= cap.min(8));
        assert!(again.iter().all(|&x| x == 0.0), "buffer comes back zeroed");
    }

    #[test]
    fn matmul_into_matches_tensor_matmul_exactly_on_small_ints() {
        // Integer-valued inputs: FMA contraction is exact, so even the
        // SIMD kernel must agree bit-for-bit with the tape matmul.
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let want = a.matmul(&b);
        let mut out = vec![f32::NAN; 4];
        matmul_into(a.data(), 2, 3, b.data(), 2, &mut out);
        assert_eq!(out, want.data());
    }

    #[test]
    fn matmul_into_tracks_reference_on_awkward_shapes() {
        // 5 x 67 @ 67 x 139 exercises the 64-wide tile, the 8-wide tile
        // and the scalar remainder columns of the SIMD kernel.
        let mut rng = StdRng::seed_from_u64(41);
        let (m, k, n) = (5, 67, 139);
        let a = Tensor::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let b = Tensor::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let want = a.matmul(&b);
        let mut out = vec![f32::NAN; m * n];
        matmul_into(a.data(), m, k, b.data(), n, &mut out);
        for (&got, &w) in out.iter().zip(want.data()) {
            assert!((got - w).abs() <= 1e-5 * w.abs().max(1.0), "got {got}, want {w}");
        }
    }

    #[test]
    fn softmax_inplace_matches_softmax_rows() {
        let t = Tensor::row(&[0.3, -1.7, 2.5, 0.0]);
        let want = t.softmax_rows();
        let mut xs = t.data().to_vec();
        softmax_inplace(&mut xs);
        assert_eq!(xs, want.data());
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        let mut out = vec![1.0, 1.0];
        axpy(&mut out, 2.0, &[3.0, 4.0]);
        assert_eq!(out, vec![7.0, 9.0]);
    }

    #[test]
    fn fast_exp_tracks_libm() {
        let mut x = -86.0f32;
        while x < 86.0 {
            let got = fast_exp(x);
            let want = x.exp();
            assert!((got - want).abs() <= 1e-6 * want, "exp({x}): got {got}, want {want}");
            x += 0.1373;
        }
        assert_eq!(fast_exp(-1000.0), (-87.336_54f32).exp());
        assert!(fast_exp(1000.0).is_finite(), "saturates instead of inf");
    }

    #[test]
    fn fast_sigmoid_and_tanh_track_libm() {
        let mut x = -30.0f32;
        while x < 30.0 {
            assert!((fast_sigmoid(x) - sigmoid(x)).abs() <= 1e-6, "sigmoid({x})");
            assert!((fast_tanh(x) - x.tanh()).abs() <= 1e-6, "tanh({x})");
            x += 0.0917;
        }
    }

    #[test]
    fn slice_activations_match_scalar_kernels() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f32> = (0..103).map(|_| rng.gen_range(-12.0f32..12.0)).collect();
        let mut s = xs.clone();
        sigmoid_slice(&mut s);
        let mut t = xs.clone();
        tanh_slice(&mut t);
        for (i, &x) in xs.iter().enumerate() {
            assert!((s[i] - fast_sigmoid(x)).abs() <= 1e-6);
            assert!((t[i] - fast_tanh(x)).abs() <= 1e-6);
        }
        let mut a = xs.clone();
        activate(&mut a, Activation::Sigmoid);
        assert_eq!(a, s);
    }
}
