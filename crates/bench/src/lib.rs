//! # bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index). This library holds the shared plumbing: argument
//! parsing, dataset/engine construction at two scales (`--full` ≈ paper
//! scale, default = reduced-but-shape-preserving), the standard
//! collect→encode→train pipeline, and TSV output.

#![warn(missing_docs)]

use encoding::word2vec::W2vConfig;
use encoding::{EncoderConfig, PlanEncoder};
use raal::dataset::{collect, Collection, CollectionConfig};
use raal::{CostModel, ModelConfig, TrainConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, SimulatorConfig};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use workloads::querygen::QueryGenConfig;
use workloads::FkGraph;

/// Command-line options shared by every harness.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Paper-scale run (slow) instead of the reduced default.
    pub full: bool,
    /// Output directory for TSV result files.
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
}

impl HarnessOpts {
    /// Parses `--full`, `--out <dir>` and `--seed <n>` from `std::env`.
    ///
    /// Also activates telemetry from `RAAL_TELEMETRY`/`RAAL_TRACE_OUT`
    /// and stamps the run manifest, so every harness is observable
    /// without per-binary wiring.
    pub fn from_env() -> Self {
        telemetry::init_from_env();
        let mut opts = Self {
            full: false,
            out_dir: PathBuf::from("results"),
            seed: 42,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.full = true,
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(args.get(i).expect("--out needs a value"));
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                other => panic!("unknown argument '{other}' (use --full / --out DIR / --seed N)"),
            }
            i += 1;
        }
        telemetry::manifest(&[
            ("bench_full", telemetry::Value::Bool(opts.full)),
            ("bench_seed", telemetry::Value::UInt(opts.seed)),
            ("bench_out_dir", telemetry::Value::Str(opts.out_dir.display().to_string())),
        ]);
        opts
    }
}

/// Workload identity for harness pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// IMDB-like (JOB) dataset.
    Imdb,
    /// TPC-H-like dataset.
    Tpch,
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Workload::Imdb => write!(f, "IMDB"),
            Workload::Tpch => write!(f, "TPC-H"),
        }
    }
}

/// A workload bound to an engine whose simulator is scaled to the paper's
/// dataset size.
pub struct Bench {
    /// The engine (catalog + planner + simulator).
    pub engine: Engine,
    /// FK graph for query generation.
    pub graph: FkGraph,
    /// Which workload this is.
    pub workload: Workload,
}

/// Builds a workload engine. Reduced scale keeps every harness minutes-
/// fast; `--full` approaches the paper's row counts.
pub fn build_bench(workload: Workload, full: bool, seed: u64) -> Bench {
    let cluster = ClusterConfig::default();
    let (catalog, graph, scale) = match workload {
        Workload::Imdb => {
            let rows = if full { 20_000 } else { 2_000 };
            let data =
                workloads::imdb::generate(&workloads::imdb::ImdbConfig { title_rows: rows, seed });
            let scale = data.simulated_scale();
            (data.catalog, data.graph, scale)
        }
        Workload::Tpch => {
            let rows = if full { 6_000 } else { 800 };
            let data = workloads::tpch::generate(&workloads::tpch::TpchConfig {
                customer_rows: rows,
                seed,
            });
            let scale = data.simulated_scale();
            (data.catalog, data.graph, scale)
        }
    };
    let sim_cfg = SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() };
    let engine = Engine::with_options(catalog, planner_options(scale), cluster, sim_cfg);
    Bench { engine, graph, workload }
}

/// Planner options with the broadcast threshold expressed at the
/// *deployed* data scale: estimated plan bytes are unscaled (the catalog
/// holds the scaled-down tables), so Catalyst's 10 MB threshold must be
/// divided by the simulator's `data_scale`.
pub fn planner_options(data_scale: f64) -> PlannerOptions {
    PlannerOptions::scaled_to(data_scale)
}

/// Standard collection sizes: the paper gathers 63k records (IMDB) and
/// 50k (TPC-H); the reduced default keeps the same structure at ~1/40.
pub fn collection_config(workload: Workload, full: bool, seed: u64) -> CollectionConfig {
    let num_queries = match (workload, full) {
        (Workload::Imdb, true) => 6000,
        (Workload::Imdb, false) => 120,
        (Workload::Tpch, true) => 5000,
        (Workload::Tpch, false) => 100,
    };
    CollectionConfig {
        num_queries,
        resource_states_per_plan: 3,
        runs_per_observation: 3,
        querygen: QueryGenConfig::default(),
        grid: sparksim::ResourceGrid::default(),
        seed,
        threads: 0,
    }
}

/// Standard training configuration.
pub fn train_config(full: bool, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: if full { 25 } else { 35 },
        lr: 1.5e-3,
        batch_size: 32,
        clip_norm: 5.0,
        seed,
        threads: 0,
    }
}

/// Standard word2vec configuration.
pub fn w2v_config(full: bool) -> W2vConfig {
    W2vConfig {
        dim: 32,
        epochs: if full { 4 } else { 2 },
        ..W2vConfig::default()
    }
}

/// The standard pipeline: collect → word2vec → encode.
pub struct Pipeline {
    /// Raw collection.
    pub collection: Collection,
    /// Trained encoder.
    pub encoder: PlanEncoder,
    /// Encoded samples.
    pub samples: Vec<encoding::Sample>,
}

/// Runs the standard pipeline for a workload.
pub fn run_pipeline(bench: &Bench, full: bool, seed: u64, structure: bool) -> Pipeline {
    let cfg = collection_config(bench.workload, full, seed);
    let collection = collect(&bench.engine, &bench.graph, &cfg);
    let encoder = collection
        .build_encoder(&w2v_config(full), EncoderConfig { structure, ..EncoderConfig::default() });
    let samples = collection.encode(&encoder, &bench.engine);
    Pipeline { collection, encoder, samples }
}

/// Builds a RAAL-family model sized for harness runs.
pub fn build_model(cfg: ModelConfig) -> CostModel {
    CostModel::new(cfg)
}

/// Writes a TSV file with a header row, creating the directory as needed.
///
/// A `<name>.manifest.json` sidecar records the run identity (run id, git
/// sha, config) next to each result file — a sidecar rather than a TSV
/// column so downstream TSV consumers stay untouched. It is written even
/// when telemetry is disabled: result provenance should not depend on
/// tracing being on.
pub fn write_tsv(dir: &Path, name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create results file");
    writeln!(f, "{}", header.join("\t")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join("\t")).expect("write row");
    }
    let manifest = telemetry::manifest_json(&[
        ("result_file", telemetry::Value::Str(name.to_string())),
        ("result_rows", telemetry::Value::UInt(rows.len() as u64)),
    ]);
    std::fs::write(dir.join(format!("{name}.manifest.json")), manifest)
        .expect("write manifest sidecar");
    println!("  -> wrote {}", path.display());
    path
}

/// Formats a float for tables.
pub fn fmt(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// Prints a boxed section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_benches_construct() {
        let b = build_bench(Workload::Imdb, false, 1);
        assert!(b.engine.catalog().len() >= 10);
        let b = build_bench(Workload::Tpch, false, 1);
        assert_eq!(b.engine.catalog().len(), 8);
    }

    #[test]
    fn tsv_writer_round_trips() {
        let dir = std::env::temp_dir().join("raal_bench_test");
        let path = write_tsv(&dir, "t.tsv", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a\tb\n1\t2\n");
    }
}
