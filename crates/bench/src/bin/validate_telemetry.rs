//! Validates a RAAL telemetry event log (`raal-events.jsonl`).
//!
//! Usage: `validate_telemetry <events.jsonl> [--expect-pipeline]`
//!
//! Every line must parse as JSON, carry the fields
//! [`telemetry::schema`] requires for its event type, and use only
//! names registered in the schema's vocabularies (span, counter,
//! histogram and event name tables) — an unregistered name in a log is
//! a name someone emitted without registering, exactly the drift the
//! schema exists to prevent. With `--expect-pipeline` the log must
//! additionally look like a full quickstart run: a `run_manifest` on
//! the first line, training epochs, inference counters and the
//! Spark-style job/stage event stream. CI runs this against the
//! quickstart example's output.

use serde::Value;
use telemetry::schema;

fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path = None;
    let mut expect_pipeline = false;
    for arg in &args[1..] {
        match arg.as_str() {
            "--expect-pipeline" => expect_pipeline = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument '{other}'")),
        }
    }
    let path = path.unwrap_or_else(|| {
        fail("usage: validate_telemetry <events.jsonl> [--expect-pipeline]");
    });
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| fail(&format!("line {}: invalid JSON ({e}): {line}", lineno + 1)));
        for key in schema::COMMON_REQUIRED {
            if v.get(key).is_none() {
                fail(&format!("line {}: missing required field '{key}'", lineno + 1));
            }
        }
        let ty = get_str(&v, "type")
            .unwrap_or_else(|| fail(&format!("line {}: 'type' is not a string", lineno + 1)));
        let required = schema::required_fields(ty)
            .unwrap_or_else(|| fail(&format!("line {}: unknown event type '{ty}'", lineno + 1)));
        for key in required {
            if v.get(key).is_none() {
                fail(&format!("line {}: {ty} event missing field '{key}'", lineno + 1));
            }
        }
        if let Some(name) = get_str(&v, "name") {
            if !name_is_registered(ty, name) {
                fail(&format!(
                    "line {}: {ty} name '{name}' is not registered in telemetry::schema",
                    lineno + 1
                ));
            }
        }
        events.push(v);
    }
    if events.is_empty() {
        fail("event log is empty");
    }

    if expect_pipeline {
        let first_ty = get_str(&events[0], "type").unwrap_or("");
        if first_ty != "run_manifest" {
            fail(&format!("first event must be run_manifest, got '{first_ty}'"));
        }
        fn has(events: &[Value], ty: &str, name: &str) -> bool {
            events.iter().any(|e| {
                get_str(e, "type") == Some(ty)
                    && get_str(e, "name").is_some_and(|n| n.starts_with(name))
            })
        }
        if !has(&events, "event", "train.epoch") && !has(&events, "span", "train.run") {
            fail("no training evidence (train.epoch event or train.run span)");
        }
        if !has(&events, "counter", "infer.") {
            fail("no inference evidence (infer.* counter)");
        }
        // A healthy quickstart run must show the base job/stage/task
        // stream; the fault/recovery events only appear in fault sweeps.
        for spark in ["job_start", "stage_completed", "task_end", "job_end"] {
            if !has(&events, "event", spark) {
                fail(&format!("no sparksim evidence ({spark} event)"));
            }
        }
    }

    let mut by_type: Vec<(String, usize)> = Vec::new();
    for e in &events {
        let ty = get_str(e, "type").unwrap_or("?").to_string();
        match by_type.iter_mut().find(|(t, _)| *t == ty) {
            Some((_, n)) => *n += 1,
            None => by_type.push((ty, 1)),
        }
    }
    println!("ok: {} events in {path}", events.len());
    for (ty, n) in by_type {
        println!("  {ty:<22} {n}");
    }
}

/// Checks a line's `name` against the schema vocabulary for its type.
/// Spans also produce derived `span.<name>_us` histograms, and timed
/// kernel spans produce `<name>_ns` histograms, so those forms are
/// accepted whenever the base name is a registered span.
fn name_is_registered(event_type: &str, name: &str) -> bool {
    match event_type {
        "span" => schema::SPAN_NAMES.contains(&name),
        "event" => schema::EVENT_NAMES.contains(&name),
        "counter" => schema::counter_is_registered(name),
        "gauge" => schema::gauge_is_registered(name),
        "histogram" => {
            schema::HISTOGRAM_NAMES.contains(&name)
                || name
                    .strip_prefix("span.")
                    .and_then(|n| n.strip_suffix("_us"))
                    .is_some_and(|n| schema::SPAN_NAMES.contains(&n))
                || name
                    .strip_suffix("_ns")
                    .is_some_and(|n| schema::SPAN_NAMES.contains(&n))
        }
        // Manifests and friends carry no name.
        _ => true,
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("validate_telemetry: {msg}");
    std::process::exit(1);
}
