//! **Table VIII** — training time and test error vs. training-set size.
//!
//! Trains RAAL on nested subsets of the collection (10k–50k records at
//! `--full`, 1/5 of that by default) and reports wall-clock training time
//! and held-out relative error. Expected shape: time grows roughly
//! linearly with the data; test error falls as data grows but is already
//! reasonable on the smallest subset.

use bench::{
    build_model, fmt, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload,
};
use raal::{evaluate, train, train_test_split, ModelConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Table VIII — training time / test error vs. data size (IMDB)");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    let (train_all, test_set) = train_test_split(pipeline.samples.clone(), 0.8, opts.seed);
    println!("available training records: {}", train_all.len());

    // Paper sizes: 10k..50k. Reduced runs scale to the data we have.
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    println!("\n{:>10} {:>12} {:>10}", "records", "train time", "test RE");
    let mut rows = Vec::new();
    for f in fractions {
        let n = ((train_all.len() as f64) * f) as usize;
        if n < 10 {
            continue;
        }
        let subset = &train_all[..n];
        let mut model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
        let history = train(&mut model, subset, &train_config(opts.full, opts.seed));
        let re = evaluate(&model, &test_set).relative_error();
        println!("{n:>10} {:>12} {:>10}", format!("{:.1}s", history.train_seconds), fmt(re));
        rows.push(vec![n.to_string(), format!("{:.2}", history.train_seconds), fmt(re)]);
    }
    write_tsv(
        &opts.out_dir,
        "tab8_training_size.tsv",
        &["train_records", "train_seconds", "test_RE"],
        &rows,
    );
}
