//! **Table VI** — RAAL vs. GPSJ (the hand-crafted analytical Spark SQL
//! cost model).
//!
//! GPSJ is not trained: it estimates from optimizer statistics and cluster
//! parameters, so it is evaluated over every collected record, while RAAL
//! trains on 80% and is evaluated on the held-out 20%. Expected shape:
//! GPSJ's errors are far larger (over-reliance on statistics; rigid
//! hand-built formulas), matching the paper's Sec. V-B(3).
//!
//! A CLEO-style per-operator micro-model (related work) is included as a
//! third row: learned calibration without plan structure — it should land
//! between GPSJ and RAAL.

use baselines::gpsj::{GpsjModel, GpsjParams};
use baselines::micro::MicroModel;
use bench::{
    build_model, fmt, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload,
};
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, EvalSet, ModelConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Table VI — RAAL vs. GPSJ (IMDB)");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    println!("records: {}", pipeline.samples.len());

    // RAAL: train/test split.
    let (train_set, test_set) = train_test_split(pipeline.samples.clone(), 0.8, opts.seed);
    let mut model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    train(&mut model, &train_set, &train_config(opts.full, opts.seed));
    let raal_summary = evaluate(&model, &test_set).summary(training_transform);

    // GPSJ: analytical, evaluated on every observation.
    let gpsj = GpsjModel::new(GpsjParams {
        data_scale: bench.engine.simulator().config().data_scale,
        ..GpsjParams::default()
    });
    let mut gpsj_set = EvalSet::new();
    for run in &pipeline.collection.plan_runs {
        for (res, seconds) in &run.observations {
            gpsj_set.push(*seconds, gpsj.estimate_seconds(&run.plan, res));
        }
    }
    let gpsj_summary = gpsj_set.summary(training_transform);

    // Micro-model: fit on the first 80% of queries, evaluate on the rest
    // (a per-record split would leak plans between train and test).
    let cluster = bench.engine.simulator().cluster();
    let cut_query = {
        let max_q = pipeline
            .collection
            .plan_runs
            .iter()
            .map(|r| r.query_idx)
            .max()
            .unwrap_or(0);
        max_q * 4 / 5
    };
    let train_records = pipeline
        .collection
        .plan_runs
        .iter()
        .filter(|r| r.query_idx < cut_query);
    let micro = MicroModel::fit(
        train_records.flat_map(|r| r.observations.iter().map(move |(res, s)| (&r.plan, res, *s))),
        cluster,
        baselines::micro::DEFAULT_RIDGE,
    );
    let mut micro_set = EvalSet::new();
    for run in pipeline
        .collection
        .plan_runs
        .iter()
        .filter(|r| r.query_idx >= cut_query)
    {
        for (res, seconds) in &run.observations {
            micro_set.push(*seconds, micro.predict_seconds(&run.plan, res, cluster));
        }
    }
    let micro_summary = micro_set.summary(training_transform);

    println!("\n{:>8} {:>9} {:>9} {:>9} {:>9}", "model", "RE", "MSE", "COR", "R2");
    let mut rows = Vec::new();
    for (name, s) in [("GPSJ", gpsj_summary), ("MICRO", micro_summary), ("RAAL", raal_summary)] {
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9}",
            name,
            fmt(s.re),
            fmt(s.mse),
            fmt(s.cor),
            fmt(s.r2)
        );
        rows.push(vec![name.to_string(), fmt(s.re), fmt(s.mse), fmt(s.cor), fmt(s.r2)]);
    }
    write_tsv(&opts.out_dir, "tab6_vs_gpsj.tsv", &["model", "RE", "MSE", "COR", "R2"], &rows);
}
