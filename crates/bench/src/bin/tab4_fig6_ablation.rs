//! **Table IV + Fig. 6** — Module ablation of the RAAL model.
//!
//! Trains RAAL, NE-LSTM (no structure embedding), NA-LSTM (no node-aware
//! attention) and RAAC (CNN plan-feature layer) on the same IMDB-like
//! collection. Reports the paper's four metrics per variant (Table IV) and
//! the per-epoch training-loss curves (Fig. 6). Expected shape: RAAL best
//! on every metric; NA-LSTM's curve least stable; RAAC behind the LSTMs.

use bench::{
    build_model, fmt, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload,
};
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, ModelConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Table IV / Fig. 6 — ablation of RAAL modules (IMDB)");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);

    // Two pipelines: with and without the structure embedding (NE-LSTM).
    let with_structure = run_pipeline(&bench, opts.full, opts.seed, true);
    let without_structure = run_pipeline(&bench, opts.full, opts.seed, false);
    println!("records: {}", with_structure.samples.len());

    let (train_s, test_s) = train_test_split(with_structure.samples.clone(), 0.8, opts.seed);
    let (train_ne, test_ne) = train_test_split(without_structure.samples.clone(), 0.8, opts.seed);
    let tcfg = train_config(opts.full, opts.seed);

    let variants: Vec<(&str, ModelConfig, bool)> = vec![
        ("NE-LSTM", ModelConfig::raal(without_structure.encoder.node_dim()), false),
        ("NA-LSTM", ModelConfig::na_lstm(with_structure.encoder.node_dim()), true),
        ("RAAC", ModelConfig::raac(with_structure.encoder.node_dim()), true),
        ("RAAL", ModelConfig::raal(with_structure.encoder.node_dim()), true),
    ];

    println!(
        "\n{:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "model", "RE", "MSE", "COR", "R2", "train(s)"
    );
    let mut table_rows = Vec::new();
    let mut loss_rows: Vec<Vec<String>> = Vec::new();
    let mut max_epochs = 0usize;
    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();

    for (name, cfg, structured) in variants {
        let (tr, te) = if structured {
            (&train_s, &test_s)
        } else {
            (&train_ne, &test_ne)
        };
        let mut model = build_model(cfg);
        let history = train(&mut model, tr, &tcfg);
        let summary = evaluate(&model, te).summary(training_transform);
        println!(
            "{:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
            name,
            fmt(summary.re),
            fmt(summary.mse),
            fmt(summary.cor),
            fmt(summary.r2),
            fmt(history.train_seconds)
        );
        table_rows.push(vec![
            name.to_string(),
            fmt(summary.re),
            fmt(summary.mse),
            fmt(summary.cor),
            fmt(summary.r2),
            fmt(history.train_seconds),
        ]);
        max_epochs = max_epochs.max(history.epoch_losses.len());
        curves.push((name.to_string(), history.epoch_losses));
    }

    // Fig. 6: loss per epoch, one column per model.
    for epoch in 0..max_epochs {
        let mut row = vec![format!("{}", epoch + 1)];
        for (_, losses) in &curves {
            row.push(losses.get(epoch).map(|l| format!("{l:.6}")).unwrap_or_default());
        }
        loss_rows.push(row);
    }
    write_tsv(
        &opts.out_dir,
        "tab4_ablation.tsv",
        &["model", "RE", "MSE", "COR", "R2", "train_s"],
        &table_rows,
    );
    let mut header = vec!["epoch"];
    let names: Vec<String> = curves.iter().map(|(n, _)| n.clone()).collect();
    header.extend(names.iter().map(String::as_str));
    write_tsv(&opts.out_dir, "fig6_training_loss.tsv", &header, &loss_rows);
}
