//! `bench_inference` — the inference engine's performance contract.
//!
//! Measures the serving-relevant latencies of the RAAL cost model —
//! single-plan p50, a 64-configuration resource sweep, K-plan packed
//! scoring, and the quantized (int8) tier against f32 — and writes
//! `BENCH_inference.json`: a machine-readable report whose *tracked*
//! metrics are dimensionless speedup ratios (machine-independent enough
//! to ratchet in CI, unlike absolute latencies, which are recorded but
//! not compared).
//!
//! Two accuracy gates run inside the harness itself, so the perf file
//! can never be regenerated from a model whose quantized tier drifted:
//!
//! * the int8 path must stay within the relative-error budget of the
//!   f32 path in normalised label space (the same 15% bound the
//!   `quant_infer` property test pins);
//! * fig1-style plan selection over each query's candidate set must
//!   pick the same plan in both tiers (near-ties within 5% excepted).
//!
//! Usage:
//! `bench_inference [--out FILE] [--check FILE] [--full] [--seed N]`
//!
//! `--check FILE` re-measures and exits non-zero if any tracked metric
//! regressed more than 10% against the baseline in FILE — the CI
//! perf-ratchet job runs `--check BENCH_inference.json`.

use bench::{build_model, run_pipeline, section, train_config, Workload};
use raal::{train, FrozenModel, ModelConfig};
use serde::Serialize;

/// Tracked-metric regression tolerance: fail `--check` when a ratio
/// drops below `baseline * (1 - TOLERANCE)`.
const TOLERANCE: f64 = 0.10;
/// Quantized-vs-f32 budget in normalised log-seconds space (matches the
/// `quant_infer` property-test gate).
const QUANT_REL_BUDGET: f64 = 0.15;
/// Near-tie band for the ranking gate: candidates whose f32 costs are
/// within this fraction of each other may legitimately swap order.
const NEAR_TIE: f64 = 0.05;

#[derive(Serialize)]
struct Metric {
    name: &'static str,
    value: f64,
    unit: &'static str,
    /// Tracked metrics are ratcheted by `--check`; untracked ones are
    /// recorded for context only.
    tracked: bool,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    /// The telemetry run manifest (run id, git sha, host identity).
    manifest: serde::Value,
    metrics: Vec<Metric>,
}

struct Opts {
    out: std::path::PathBuf,
    check: Option<std::path::PathBuf>,
    full: bool,
    seed: u64,
}

fn parse_opts() -> Opts {
    telemetry::init_from_env();
    let mut opts = Opts {
        out: std::path::PathBuf::from("BENCH_inference.json"),
        check: None,
        full: false,
        seed: 42,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.full = true,
            "--out" => {
                i += 1;
                opts.out = std::path::PathBuf::from(args.get(i).expect("--out needs a value"));
            }
            "--check" => {
                i += 1;
                opts.check =
                    Some(std::path::PathBuf::from(args.get(i).expect("--check needs a value")));
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            other => panic!(
                "unknown argument '{other}' (use --out FILE / --check FILE / --full / --seed N)"
            ),
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_opts();
    section("bench_inference — quantized batched inference engine");

    // Same setup as the Table IX harness: a briefly-trained RAAL model
    // (weights don't matter for latency, but training de-zeroes the
    // ReLU head so the accuracy gates bite) over the IMDB workload.
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    let tcfg = {
        let mut t = train_config(false, opts.seed);
        t.epochs = 3;
        t
    };
    let train_subset: Vec<_> = pipeline.samples.iter().take(200).cloned().collect();
    let mut model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    train(&mut model, &train_subset, &tcfg);
    let cluster = bench.engine.simulator().cluster();

    // Up to 100 distinct queries: one (plan, encoded, resources) per
    // query for the latency metrics, plus each query's full candidate
    // set for the ranking gate.
    let mut singles = Vec::new();
    let mut candidate_sets: Vec<Vec<encoding::EncodedPlan>> = Vec::new();
    let mut current_query = usize::MAX;
    for run in &pipeline.collection.plan_runs {
        if run.plan_idx == 0 {
            if singles.len() >= 100 {
                break;
            }
            let (res, _) = &run.observations[0];
            singles.push((pipeline.encoder.encode(&run.plan), res.feature_vector(cluster)));
            candidate_sets.push(Vec::new());
            current_query = run.query_idx;
        }
        if run.query_idx == current_query {
            if let Some(set) = candidate_sets.last_mut() {
                set.push(pipeline.encoder.encode(&run.plan));
            }
        }
    }
    let n = singles.len();
    assert!(n >= 50, "need enough distinct queries, got {n}");
    println!("benchmarking over {n} plans (best-of-5 timings)\n");

    let time_ms = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = telemetry::clock_ns();
            f();
            best = best.min((telemetry::clock_ns() - t0) as f64 * 1e-6);
        }
        best
    };

    // ---- f32 tier.
    let tape_ms = time_ms(&|| {
        for (enc, feats) in &singles {
            std::hint::black_box(model.predict_seconds_tape(enc, feats));
        }
    });
    let fast_ms = time_ms(&|| {
        for (enc, feats) in &singles {
            std::hint::black_box(model.predict_seconds(enc, feats));
        }
    });

    // 64-configuration sweep over the first 8 plans: naive full forward
    // vs PlanContext reuse.
    let sweep_plans = 8.min(n);
    let sweep_configs: Vec<Vec<f32>> = (0..64)
        .map(|i| {
            let base = &singles[i % sweep_plans].1;
            let s = 0.25 + 0.75 * (i as f32 / 63.0);
            base.iter().map(|x| x * s).collect()
        })
        .collect();
    let sweep_naive_ms = time_ms(&|| {
        for (enc, _) in singles.iter().take(sweep_plans) {
            for cfg in &sweep_configs {
                std::hint::black_box(model.predict_seconds(enc, cfg));
            }
        }
    });
    let sweep_cached_ms = time_ms(&|| {
        for (enc, _) in singles.iter().take(sweep_plans) {
            let ctx = model.plan_context(enc);
            for cfg in &sweep_configs {
                std::hint::black_box(model.predict_with_context(&ctx, cfg));
            }
        }
    });

    // ---- Accuracy gates + quantized tier (freeze consumes the model,
    // so the f32 reference predictions are captured first).
    let f32_preds: Vec<f64> = singles
        .iter()
        .map(|(enc, feats)| model.predict_seconds(enc, feats))
        .collect();
    let f32_rankings: Vec<Vec<f64>> = candidate_sets
        .iter()
        .zip(&singles)
        .map(|(set, (_, feats))| {
            let items: Vec<_> = set.iter().map(|e| (e, feats.as_slice())).collect();
            model.predict_batch(&items)
        })
        .collect();
    let frozen = FrozenModel::freeze(model);

    let mut quant_rel_err_max = 0.0f64;
    for ((enc, feats), &f32_pred) in singles.iter().zip(&f32_preds) {
        let q_pred = frozen.predict_seconds(enc, feats);
        let (yq, yf) = ((1.0 + q_pred).ln(), (1.0 + f32_pred).ln());
        quant_rel_err_max = quant_rel_err_max.max((yq - yf).abs() / yf.abs().max(1.0));
    }
    assert!(
        quant_rel_err_max <= QUANT_REL_BUDGET,
        "ACCURACY GATE FAILED: quantized tier diverged from f32 by {quant_rel_err_max:.4} \
         (budget {QUANT_REL_BUDGET}) in normalised label space"
    );
    println!("accuracy gate: max quant-vs-f32 relative error {quant_rel_err_max:.5} (budget {QUANT_REL_BUDGET})");

    let mut ranked_queries = 0usize;
    for (set, (f32_costs, (_, feats))) in
        candidate_sets.iter().zip(f32_rankings.iter().zip(&singles))
    {
        if set.len() < 2 {
            continue;
        }
        ranked_queries += 1;
        let items: Vec<_> = set.iter().map(|e| (e, feats.as_slice())).collect();
        let q_costs = frozen.predict_packed(&items);
        let argmin = |xs: &[f64]| {
            xs.iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        let (fi, qi) = (argmin(f32_costs), argmin(&q_costs));
        let near_tie = (f32_costs[fi] - f32_costs[qi]).abs()
            <= NEAR_TIE * f32_costs[fi].max(f32_costs[qi]).max(1e-9);
        assert!(
            fi == qi || near_tie,
            "RANKING GATE FAILED: quantization changed plan selection from candidate {fi} \
             ({} s) to {qi} ({} s) — beyond the {NEAR_TIE} near-tie band",
            f32_costs[fi],
            f32_costs[qi],
        );
    }
    println!("ranking gate: plan selection agreed on all {ranked_queries} multi-candidate queries");

    let quant_ms = time_ms(&|| {
        for (enc, feats) in &singles {
            std::hint::black_box(frozen.predict_seconds(enc, feats));
        }
    });

    // ---- K-plan packed scoring: K=16 sequential vs one packed GEMM
    // per layer, both on the quantized tier.
    let k = 16.min(n);
    let pack_items: Vec<_> = singles.iter().take(k).map(|(e, f)| (e, f.as_slice())).collect();
    let pack_seq_ms = time_ms(&|| {
        for (enc, feats) in singles.iter().take(k) {
            std::hint::black_box(frozen.predict_seconds(enc, feats));
        }
    });
    let pack_ms = time_ms(&|| {
        std::hint::black_box(frozen.predict_packed(&pack_items));
    });

    let metrics = vec![
        Metric {
            name: "single_plan_p50_us_f32",
            value: fast_ms / n as f64 * 1e3,
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "single_plan_p50_us_quant",
            value: quant_ms / n as f64 * 1e3,
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "tape_total_ms",
            value: tape_ms,
            unit: "ms",
            tracked: false,
        },
        Metric {
            name: "sweep64_naive_ms",
            value: sweep_naive_ms,
            unit: "ms",
            tracked: false,
        },
        Metric {
            name: "sweep64_cached_ms",
            value: sweep_cached_ms,
            unit: "ms",
            tracked: false,
        },
        Metric {
            name: "pack16_seq_ms",
            value: pack_seq_ms,
            unit: "ms",
            tracked: false,
        },
        Metric {
            name: "pack16_packed_ms",
            value: pack_ms,
            unit: "ms",
            tracked: false,
        },
        Metric {
            name: "quant_rel_err_max",
            value: quant_rel_err_max,
            unit: "ratio",
            tracked: false,
        },
        Metric {
            name: "fast_vs_tape",
            value: tape_ms / fast_ms,
            unit: "ratio",
            tracked: true,
        },
        Metric {
            name: "sweep_cache_speedup",
            value: sweep_naive_ms / sweep_cached_ms,
            unit: "ratio",
            tracked: true,
        },
        Metric {
            name: "batch_pack_speedup",
            value: pack_seq_ms / pack_ms,
            unit: "ratio",
            tracked: true,
        },
        Metric {
            name: "quant_speedup",
            value: fast_ms / quant_ms,
            unit: "ratio",
            tracked: true,
        },
    ];

    println!("\n{:>24} {:>14} {:>8} {:>8}", "metric", "value", "unit", "tracked");
    for m in &metrics {
        println!("{:>24} {:>14.4} {:>8} {:>8}", m.name, m.value, m.unit, m.tracked);
    }

    if let Some(baseline_path) = &opts.check {
        check_against(baseline_path, &metrics);
        return;
    }

    let manifest_text =
        telemetry::manifest_json(&[("bench_inference_plans", telemetry::Value::UInt(n as u64))]);
    let manifest: serde::Value =
        serde_json::from_str(&manifest_text).expect("telemetry manifest is valid JSON");
    let report = Report {
        schema: "raal.bench_inference/v1",
        manifest,
        metrics,
    };
    let json = serde_json::to_string(&report).expect("serialise report");
    std::fs::write(&opts.out, json + "\n").expect("write report");
    println!("\n  -> wrote {}", opts.out.display());
    // Flush counter/histogram summaries (the `infer.quant.*` counters in
    // particular) so a telemetry-enabled run validates end to end.
    telemetry::shutdown();
}

/// Compares tracked metrics against a committed baseline, failing the
/// process when any ratio regressed more than [`TOLERANCE`].
fn check_against(baseline_path: &std::path::Path, metrics: &[Metric]) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", baseline_path.display()));
    let baseline: serde::Value = serde_json::from_str(&text).expect("baseline parses as JSON");
    let entries = match baseline.get("metrics") {
        Some(serde::Value::Array(a)) => a,
        _ => panic!("baseline {} has no metrics array", baseline_path.display()),
    };
    let baseline_value = |name: &str| -> Option<f64> {
        entries.iter().find_map(|m| {
            let is_name = matches!(m.get("name"), Some(serde::Value::Str(s)) if s == name);
            let tracked = matches!(m.get("tracked"), Some(serde::Value::Bool(true)));
            if !is_name || !tracked {
                return None;
            }
            match m.get("value") {
                Some(serde::Value::Float(v)) => Some(*v),
                Some(serde::Value::Int(v)) => Some(*v as f64),
                Some(serde::Value::UInt(v)) => Some(*v as f64),
                _ => None,
            }
        })
    };
    let mut failures = Vec::new();
    println!("\nperf ratchet vs {} (tolerance {TOLERANCE}):", baseline_path.display());
    for m in metrics.iter().filter(|m| m.tracked) {
        match baseline_value(m.name) {
            Some(base) => {
                let floor = base * (1.0 - TOLERANCE);
                let ok = m.value >= floor;
                println!(
                    "  {:>22}: {:.3} vs baseline {:.3} (floor {:.3}) {}",
                    m.name,
                    m.value,
                    base,
                    floor,
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    failures.push(m.name);
                }
            }
            None => println!("  {:>22}: {:.3} (no baseline — new metric)", m.name, m.value),
        }
    }
    if !failures.is_empty() {
        eprintln!("perf ratchet FAILED: {failures:?} regressed more than {TOLERANCE:.0}%");
        std::process::exit(1);
    }
    println!("perf ratchet passed.");
}
