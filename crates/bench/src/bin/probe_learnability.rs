//! Diagnostic (not a paper experiment): measures how much signal the
//! encoded features carry about the simulated time.
//!
//! 1. A closed-form ridge regression on `[resources ++ plan_stats ++ 1]`
//!    — if even this linear probe correlates well, the deep models should
//!    do better; if not, the features are the bottleneck.
//! 2. A long RAAL training run to check convergence behaviour.

use bench::{build_model, fmt, run_pipeline, section, write_tsv, HarnessOpts, Workload};
use raal::model::normalize_seconds;
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, EvalSet, ModelConfig, TrainConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("probe — linear learnability of the encoded features");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    let (train_set, test_set) = train_test_split(pipeline.samples.clone(), 0.8, opts.seed);
    println!("records: train {}, test {}", train_set.len(), test_set.len());

    // ---- linear probe ----
    let feat = |s: &encoding::Sample| -> Vec<f64> {
        let mut v: Vec<f64> = s.resources.iter().map(|&x| x as f64).collect();
        v.extend(s.plan.plan_stats.iter().map(|&x| x as f64));
        // Interaction terms the simulator obviously has: bytes/slots.
        let slots = (s.resources[2] * s.resources[3]) as f64;
        v.push(s.plan.plan_stats[0] as f64 / (slots + 0.05));
        v.push(1.0);
        v
    };
    let d = feat(&train_set[0]).len();
    let mut xtx = vec![0.0f64; d * d];
    let mut xty = vec![0.0f64; d];
    for s in &train_set {
        let x = feat(s);
        let y = normalize_seconds(s.seconds) as f64;
        for i in 0..d {
            xty[i] += x[i] * y;
            for j in 0..d {
                xtx[i * d + j] += x[i] * x[j];
            }
        }
    }
    for i in 0..d {
        xtx[i * d + i] += 1e-4; // ridge
    }
    let w = solve(&mut xtx, &mut xty, d);
    let mut probe_eval = EvalSet::new();
    for s in &test_set {
        let x = feat(s);
        let yhat: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        let pred = ((yhat.clamp(0.0, 1.5)) * (7201.0f64).ln()).exp() - 1.0;
        probe_eval.push(s.seconds, pred);
    }
    let p = probe_eval.summary(training_transform);
    println!(
        "linear probe: RE={} MSE={} COR={} R2={}",
        fmt(p.re),
        fmt(p.mse),
        fmt(p.cor),
        fmt(p.r2)
    );

    // ---- long RAAL run ----
    let mut model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    let tcfg = TrainConfig {
        epochs: 40,
        lr: 2e-3,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let history = train(&mut model, &train_set, &tcfg);
    println!("RAAL losses: {:?}", history.epoch_losses);
    let m = evaluate(&model, &test_set).summary(training_transform);
    println!(
        "RAAL (40 epochs): RE={} MSE={} COR={} R2={}",
        fmt(m.re),
        fmt(m.mse),
        fmt(m.cor),
        fmt(m.r2)
    );

    write_tsv(
        &opts.out_dir,
        "probe_learnability.tsv",
        &["model", "RE", "MSE", "COR", "R2"],
        &[
            vec!["linear-probe".into(), fmt(p.re), fmt(p.mse), fmt(p.cor), fmt(p.r2)],
            vec!["raal-40ep".into(), fmt(m.re), fmt(m.mse), fmt(m.cor), fmt(m.r2)],
        ],
    );
}

/// Gaussian elimination with partial pivoting for the small normal system.
fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        let mut pivot = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        for c in 0..n {
            a.swap(col * n + c, pivot * n + c);
        }
        b.swap(col, pivot);
        let p = a[col * n + col];
        if p.abs() < 1e-12 {
            continue;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = a[r * n + col] / p;
            for c in 0..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    (0..n)
        .map(|i| {
            let p = a[i * n + i];
            if p.abs() < 1e-12 {
                0.0
            } else {
                b[i] / p
            }
        })
        .collect()
}
