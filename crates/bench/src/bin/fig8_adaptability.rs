//! **Fig. 8** — adaptability of RAAL across executor-memory environments.
//!
//! Trains one RAAL model on the full resource-varying IMDB collection and
//! evaluates the test split *sliced by executor memory* (1–8 GB). The
//! paper's shape: COR and R² stay above ~0.9 and flat; RE around 0.1;
//! MSE stable — i.e. accuracy does not degrade in any memory environment.

use bench::{
    build_model, fmt, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload,
};
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, ModelConfig};
use sparksim::ClusterConfig;

fn main() {
    let opts = HarnessOpts::from_env();
    section("Fig. 8 — RAAL adaptability across executor memory (IMDB)");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    let (train_set, test_set) = train_test_split(pipeline.samples.clone(), 0.8, opts.seed);
    println!("records: train {}, test {}", train_set.len(), test_set.len());

    let mut model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    train(&mut model, &train_set, &train_config(opts.full, opts.seed));

    // Memory is feature index 4 (Table I order), normalised by node memory.
    let node_mem = ClusterConfig::default().memory_per_node_gb;
    let memories = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    println!(
        "\n{:>8} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "mem(GB)", "n", "RE", "MSE", "COR", "R2"
    );
    let mut rows = Vec::new();
    for &mem in &memories {
        let want = (mem / node_mem) as f32;
        let slice: Vec<_> = test_set
            .iter()
            .filter(|s| (s.resources[4] - want).abs() < 1e-6)
            .cloned()
            .collect();
        if slice.len() < 5 {
            println!("{mem:>8.0} {:>7} (too few samples, skipped)", slice.len());
            continue;
        }
        let summary = evaluate(&model, &slice).summary(training_transform);
        println!(
            "{mem:>8.0} {:>7} {:>9} {:>9} {:>9} {:>9}",
            slice.len(),
            fmt(summary.re),
            fmt(summary.mse),
            fmt(summary.cor),
            fmt(summary.r2)
        );
        rows.push(vec![
            format!("{mem}"),
            slice.len().to_string(),
            fmt(summary.re),
            fmt(summary.mse),
            fmt(summary.cor),
            fmt(summary.r2),
        ]);
    }
    write_tsv(
        &opts.out_dir,
        "fig8_adaptability.tsv",
        &["memory_gb", "n", "RE", "MSE", "COR", "R2"],
        &rows,
    );
}
