//! Renders the metrics of a finished RAAL run as a Prometheus or JSON
//! snapshot.
//!
//! Usage: `raal-metrics <events.jsonl> [--json] [-o <path>]`
//!
//! Reads the summary lines the telemetry sink writes at shutdown
//! (`counter`, `gauge` and `histogram` events) and rebuilds a
//! [`telemetry::MetricsSnapshot`] from them, so any run's JSONL log can
//! be scraped after the fact — even when the run did not set
//! `RAAL_METRICS_OUT`. Output is the Prometheus text exposition format
//! by default (`scripts/check_prometheus.py` validates it in CI) or the
//! snapshot JSON with `--json`; `-o` writes to a file instead of
//! stdout.
//!
//! Reconstruction notes: counters are summed across drains, gauges and
//! histograms are last-write-wins (a drained histogram cannot be merged
//! from summaries alone), and the summary lines carry no histogram
//! `min`, so `min` is reported as 0.

use serde::Value;
use telemetry::registry::{HistSnapshot, HistStats, MetricsSnapshot};

fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

fn get_u64(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) if *i >= 0 => *i as u64,
        _ => 0,
    }
}

fn get_f64(v: &Value, key: &str) -> f64 {
    match v.get(key) {
        Some(Value::Float(f)) => *f,
        Some(Value::UInt(u)) => *u as f64,
        Some(Value::Int(i)) => *i as f64,
        _ => 0.0,
    }
}

/// Percentile summaries from a histogram line; `prefix` selects the
/// all-time (`""`) or windowed (`"recent_"`) field family.
fn stats_from_line(v: &Value, prefix: &str) -> HistStats {
    let count = get_u64(v, &format!("{prefix}count"));
    let quant = |k: &str| {
        let q = get_u64(v, &format!("{prefix}{k}"));
        (count > 0).then_some(q)
    };
    HistStats {
        count,
        min: 0,
        max: get_u64(v, &format!("{prefix}max")),
        mean: get_f64(v, &format!("{prefix}mean")),
        p50: quant("p50"),
        p95: quant("p95"),
        p99: quant("p99"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path = None;
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "-o" | "--out" => {
                out_path = Some(
                    it.next()
                        .unwrap_or_else(|| fail("-o requires a path argument"))
                        .to_string(),
                );
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument '{other}'")),
        }
    }
    let path =
        path.unwrap_or_else(|| fail("usage: raal-metrics <events.jsonl> [--json] [-o <path>]"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    let mut snap = MetricsSnapshot::default();
    let mut summaries = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| fail(&format!("line {}: invalid JSON ({e})", lineno + 1)));
        let (Some(ty), name) = (get_str(&v, "type"), get_str(&v, "name")) else {
            continue;
        };
        let Some(name) = name else { continue };
        snap.at_us = snap.at_us.max(get_u64(&v, "ts_us"));
        match ty {
            "counter" => {
                let slot = snap.counters.entry(name.to_string()).or_insert(0);
                *slot = slot.saturating_add(get_u64(&v, "value"));
                summaries += 1;
            }
            "gauge" => {
                snap.gauges.insert(name.to_string(), get_f64(&v, "value"));
                summaries += 1;
            }
            "histogram" => {
                snap.hists.insert(
                    name.to_string(),
                    HistSnapshot {
                        all: stats_from_line(&v, ""),
                        recent: stats_from_line(&v, "recent_"),
                    },
                );
                summaries += 1;
            }
            _ => {}
        }
    }
    if summaries == 0 {
        fail(&format!("{path} holds no metric summary lines — did the run call shutdown()?"));
    }

    let rendered = if json {
        snap.to_json()
    } else {
        snap.to_prometheus()
    };
    match out_path {
        Some(out) => std::fs::write(&out, rendered)
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}"))),
        None => print!("{rendered}"),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("raal-metrics: {msg}");
    std::process::exit(1);
}
