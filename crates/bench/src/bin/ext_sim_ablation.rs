//! **Extension (DESIGN.md ablation)** — which simulator mechanism produces
//! which memory phenomenon.
//!
//! The substitution argument of this reproduction rests on the simulator's
//! four memory mechanisms (spill, GC, page cache, placement) plus the
//! broadcast cap. This harness disables them one at a time and reports the
//! memory-sweep curve of the paper's three-table query, showing each
//! mechanism's contribution to the non-monotonic shape.

use bench::{fmt, section, write_tsv, HarnessOpts};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, paper_section3_queries, ImdbConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Extension — simulator mechanism ablation (memory sweep)");
    let rows_cfg = if opts.full { 20_000 } else { 4_000 };
    let data = generate(&ImdbConfig { title_rows: rows_cfg, seed: opts.seed });
    let scale = data.simulated_scale();
    let queries = paper_section3_queries(&data);

    let base = SimulatorConfig {
        data_scale: scale,
        noise_sigma: 0.0,
        ..SimulatorConfig::default()
    };
    let variants: Vec<(&str, SimulatorConfig)> = vec![
        ("full model", base.clone()),
        ("no GC term", SimulatorConfig { gc_per_gb: 0.0, ..base.clone() }),
        (
            "no broadcast cap",
            SimulatorConfig { broadcast_cap_fraction: 1e9, ..base.clone() },
        ),
        (
            "no page cache",
            SimulatorConfig {
                cache_throughput_mbps: base.disk_equivalent(),
                ..base.clone()
            },
        ),
        ("no spill", SimulatorConfig { memory_fraction: 1e9, ..base.clone() }),
    ];

    let catalog = data.catalog;
    let planner_opts = PlannerOptions { max_plans: 3, ..PlannerOptions::scaled_to(scale) };
    let engine =
        Engine::with_options(catalog, planner_opts, ClusterConfig::default(), base.clone());
    let memories: Vec<f64> = (1..=8).map(|m| m as f64).collect();

    // Pick the (query, plan) whose cost responds most to memory — that is
    // the curve whose mechanisms are worth attributing.
    let mut chosen: Option<(String, sparksim::PhysicalPlan, sparksim::exec::ExecResult, f64)> =
        None;
    for (_, sql) in &queries {
        let plans = engine.plan_candidates(sql).expect("plans");
        for plan in plans {
            let exec = engine.execute_plan(&plan).expect("runs");
            let times: Vec<f64> = memories
                .iter()
                .map(|&m| {
                    let res = ResourceConfig {
                        executors: 2,
                        cores_per_executor: 2,
                        memory_per_executor_gb: m,
                        network_throughput_mbps: 120.0,
                        disk_throughput_mbps: 200.0,
                    };
                    engine.simulator().simulate(&plan, &exec.metrics, &res, 0)
                })
                .collect();
            let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = times.iter().cloned().fold(0.0f64, f64::max);
            let spread = hi / lo.max(1e-9);
            if chosen.as_ref().is_none_or(|(_, _, _, best)| spread > *best) {
                chosen = Some((sql.clone(), plan, exec, spread));
            }
        }
    }
    let (sql, plan, exec, spread) = chosen.expect("at least one plan");
    let plan = &plan;
    println!("query: {sql}");
    println!("most memory-sensitive plan (x{spread:.1} spread):\n{}", plan.explain());
    print!("{:>18}", "variant");
    for m in &memories {
        print!("{:>9}", format!("{m}GB"));
    }
    println!();
    let mut rows = Vec::new();
    for (name, cfg) in &variants {
        let sim = sparksim::CostSimulator::new(ClusterConfig::default(), cfg.clone());
        print!("{name:>18}");
        let mut row = vec![name.to_string()];
        for &m in &memories {
            let res = ResourceConfig {
                executors: 2,
                cores_per_executor: 2,
                memory_per_executor_gb: m,
                network_throughput_mbps: 120.0,
                disk_throughput_mbps: 200.0,
            };
            let t = sim.simulate(plan, &exec.metrics, &res, 0);
            print!("{:>9}", fmt(t));
            row.push(fmt(t));
        }
        println!();
        rows.push(row);
    }
    println!(
        "\nreading: removing the broadcast cap flattens the low-memory spike; \
         removing GC flattens the high-memory rise; spill/page-cache shape \
         the middle of the curve."
    );
    let mut header = vec!["variant".to_string()];
    header.extend(memories.iter().map(|m| format!("{m}GB")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    write_tsv(&opts.out_dir, "ext_sim_ablation.tsv", &header_refs, &rows);
}

/// Helper so the "no page cache" variant reads as intent: cache reads at
/// disk speed, i.e. the cache buys nothing.
trait DiskEquivalent {
    fn disk_equivalent(&self) -> f64;
}

impl DiskEquivalent for SimulatorConfig {
    fn disk_equivalent(&self) -> f64 {
        200.0
    }
}
