//! `bench_serving` — the sharded serving tier's performance contract.
//!
//! A load generator: [`CLIENTS`] client threads hammer a
//! [`ShardedServing`] fleet with single-plan predict calls (the cost
//! model's serving-time shape — one optimizer probe per call), driving
//! about a million predictions in the default full run. Each thread
//! times every call with `telemetry::clock_ns` into a thread-local
//! histogram; the merged histogram yields the reported p50/p95/p99.
//!
//! The tracked headline is `batched_vs_sequential`: the same load
//! replayed against a one-at-a-time service (`shards: 1, max_batch: 1`
//! — every request priced alone, exactly the pre-coalescing serving
//! path) versus the sharded fleet with cross-request batching. The
//! ratio is dimensionless and machine-independent enough to ratchet in
//! CI; absolute latencies and throughputs are recorded untracked.
//!
//! Two gates run inside the harness:
//!
//! * every prediction must come from the deep model (`hit_rate == 1`) —
//!   a bench that quietly fell back to the analytical model would
//!   "win" on throughput while measuring nothing;
//! * in the full run, coalescing must beat one-at-a-time by at least
//!   [`MIN_FULL_SPEEDUP`]x at [`CLIENTS`] concurrent clients — **when
//!   the machine has at least [`MIN_GATE_CORES`] cores**. The sharded
//!   tier's win is mostly inference parallelism (shards) plus handoff
//!   amortization (coalescing); on a 1–2 core box both services are
//!   serialized onto the same CPU and the contract is not expressible,
//!   so the gate degrades to a no-collapse floor and says so.
//!
//! The shard count scales with the hardware (`min(cores, 4)`): spawning
//! four dispatcher/worker pairs on one core only adds scheduler thrash.
//!
//! Usage:
//! `bench_serving [--out FILE] [--check FILE] [--smoke] [--seed N]`
//!
//! `--smoke` shrinks the run to ~10k predictions for CI smoke jobs;
//! `--check FILE` re-measures and exits non-zero if a tracked metric
//! regressed more than [`TOLERANCE`] against the baseline in FILE.

use bench::{build_model, run_pipeline, section, train_config, Workload};
use raal::persist::ModelBundle;
use raal::serving::shard::{ShardConfig, ShardedServing};
use raal::serving::{FallbackModel, ServingConfig};
use raal::{train, ModelConfig};
use serde::Serialize;
use sparksim::plan::physical::PhysicalPlan;
use sparksim::resource::ResourceConfig;
use std::sync::Arc;
use std::time::Duration;

/// Client threads in the load generator (the acceptance shape: 8
/// concurrent clients).
const CLIENTS: usize = 8;
/// Predictions per full run (~1M) and per smoke run (~10k).
const FULL_PREDICTIONS: u64 = 1_000_000;
const SMOKE_PREDICTIONS: u64 = 10_000;
/// The sequential baseline replays a fraction of the load: throughput
/// is a rate, and one-at-a-time pricing of the full million would
/// dominate wall time without changing the measurement.
const BASELINE_DIVISOR: u64 = 8;
/// Tracked-metric regression tolerance. Deliberately looser than
/// `bench_inference`'s 10%: a cross-thread batching ratio moves with
/// scheduler noise and core count, so the ratchet only catches
/// collapses (e.g. coalescing silently disabled), not jitter.
const TOLERANCE: f64 = 0.5;
/// Full-run floor for `batched_vs_sequential` on multi-core machines.
const MIN_FULL_SPEEDUP: f64 = 3.0;
/// Cores needed before the [`MIN_FULL_SPEEDUP`] gate is meaningful:
/// the batched fleet needs its shards actually running in parallel.
const MIN_GATE_CORES: usize = 4;
/// Floor applied instead on narrower machines: coalescing may not win
/// without parallelism, but it must never collapse throughput.
const MIN_SERIAL_SPEEDUP: f64 = 0.75;

#[derive(Serialize)]
struct Metric {
    name: &'static str,
    value: f64,
    unit: &'static str,
    /// Tracked metrics are ratcheted by `--check`; untracked ones are
    /// recorded for context only.
    tracked: bool,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    /// The telemetry run manifest (run id, git sha, host identity).
    manifest: serde::Value,
    metrics: Vec<Metric>,
}

struct Opts {
    out: std::path::PathBuf,
    check: Option<std::path::PathBuf>,
    smoke: bool,
    seed: u64,
}

fn parse_opts() -> Opts {
    telemetry::init_from_env();
    let mut opts = Opts {
        out: std::path::PathBuf::from("BENCH_serving.json"),
        check: None,
        smoke: false,
        seed: 42,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                i += 1;
                opts.out = std::path::PathBuf::from(args.get(i).expect("--out needs a value"));
            }
            "--check" => {
                i += 1;
                opts.check =
                    Some(std::path::PathBuf::from(args.get(i).expect("--check needs a value")));
            }
            "--seed" => {
                i += 1;
                opts.seed = args
                    .get(i)
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            other => panic!(
                "unknown argument '{other}' (use --out FILE / --check FILE / --smoke / --seed N)"
            ),
        }
        i += 1;
    }
    opts
}

/// Replays `total` predictions against `service` from [`CLIENTS`]
/// threads, round-robin over the plan pool, and returns the merged
/// latency histogram (microseconds) plus throughput in predictions/s.
fn drive(
    service: &ShardedServing,
    plans: &[(PhysicalPlan, ResourceConfig)],
    total: u64,
) -> (telemetry::Histogram, f64) {
    let t0 = telemetry::clock_ns();
    let mut hists: Vec<telemetry::Histogram> = Vec::with_capacity(CLIENTS);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let mut hist = telemetry::Histogram::new();
                    let share =
                        total / CLIENTS as u64 + u64::from((total % CLIENTS as u64) > c as u64);
                    let tenant = format!("client-{c}");
                    for k in 0..share {
                        let (plan, res) = &plans[(c + k as usize) % plans.len()];
                        let t = telemetry::clock_ns();
                        let pred = service.predict(&tenant, plan, res);
                        hist.record((telemetry::clock_ns() - t) / 1_000);
                        assert!(pred.seconds.is_finite(), "non-finite prediction");
                    }
                    hist
                })
            })
            .collect();
        for h in handles {
            hists.push(h.join().expect("client thread panicked"));
        }
    });
    let elapsed_s = (telemetry::clock_ns() - t0) as f64 * 1e-9;
    let mut merged = telemetry::Histogram::new();
    for h in &hists {
        merged.merge(h);
    }
    let tput = merged.count() as f64 / elapsed_s.max(1e-9);
    (merged, tput)
}

fn main() {
    let opts = parse_opts();
    section("bench_serving — sharded multi-tenant serving under load");

    // Same setup as bench_inference: a briefly-trained RAAL model over
    // the reduced IMDB workload (weights don't matter for latency, but
    // a trained head keeps the packed/single paths honest).
    let bench = bench::build_bench(Workload::Imdb, false, opts.seed);
    let pipeline = run_pipeline(&bench, false, opts.seed, true);
    let tcfg = {
        let mut t = train_config(false, opts.seed);
        t.epochs = 3;
        t
    };
    let train_subset: Vec<_> = pipeline.samples.iter().take(200).cloned().collect();
    let mut model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    train(&mut model, &train_subset, &tcfg);

    // A pool of (plan, resources) pairs the clients cycle through.
    let mut plans: Vec<(PhysicalPlan, ResourceConfig)> = Vec::new();
    for run in &pipeline.collection.plan_runs {
        if plans.len() >= 64 {
            break;
        }
        let (res, _) = &run.observations[0];
        plans.push((run.plan.clone(), res.clone()));
    }
    assert!(plans.len() >= 16, "need a plan pool, got {}", plans.len());

    let total = if opts.smoke {
        SMOKE_PREDICTIONS
    } else {
        FULL_PREDICTIONS
    };
    let baseline_total = (total / BASELINE_DIVISOR).max(1);
    println!(
        "load: {total} predictions, {CLIENTS} client threads, {} plans in the pool\n",
        plans.len()
    );

    let fallback: Arc<dyn FallbackModel + Send + Sync> =
        Arc::new(|plan: &PhysicalPlan, _res: &ResourceConfig| 1.0 + plan.len() as f64);
    // Generous deadline and quotas: the bench measures batching, so
    // nothing should shed (the hit-rate gate enforces that).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let serving = ServingConfig {
        deadline: Duration::from_secs(5),
        ..Default::default()
    };
    let batched_cfg = ShardConfig {
        shards: cores.min(4),
        max_batch: 32,
        queue_capacity: 4096,
        tenant_inflight: 1024,
        serving: serving.clone(),
    };
    println!("machine: {cores} cores -> {} shards", batched_cfg.shards);
    // One shard, batch size one: every request priced alone — the
    // pre-coalescing serving path under identical client concurrency.
    let sequential_cfg = ShardConfig { shards: 1, max_batch: 1, ..batched_cfg.clone() };

    let bundle = ModelBundle::new(model.clone(), &pipeline.encoder);
    let service = ShardedServing::new(bundle, fallback.clone(), batched_cfg);
    let (hist, batched_tput) = drive(&service, &plans, total);
    let slo = service.slo_stats();
    service.shutdown();
    assert_eq!(slo.total, total, "predictions lost in flight");
    assert!(
        slo.hit_rate() >= 1.0,
        "HIT-RATE GATE FAILED: {} of {} predictions fell back — the bench must \
         measure the model path, not the analytical fallback",
        slo.total - slo.model,
        slo.total,
    );
    let q = |p: f64| hist.quantile(p).unwrap_or(0) as f64;
    println!(
        "batched:    {batched_tput:>10.0} predictions/s  p50 {:>5.0} us  p95 {:>5.0} us  p99 {:>5.0} us",
        q(0.50),
        q(0.95),
        q(0.99)
    );

    let bundle = ModelBundle::new(model, &pipeline.encoder);
    let service = ShardedServing::new(bundle, fallback, sequential_cfg);
    let (seq_hist, seq_tput) = drive(&service, &plans, baseline_total);
    let seq_slo = service.slo_stats();
    service.shutdown();
    assert!(seq_slo.hit_rate() >= 1.0, "baseline fell back ({} misses)", {
        seq_slo.total - seq_slo.model
    });
    let sq = |p: f64| seq_hist.quantile(p).unwrap_or(0) as f64;
    println!(
        "sequential: {seq_tput:>10.0} predictions/s  p50 {:>5.0} us  p95 {:>5.0} us  p99 {:>5.0} us",
        sq(0.50),
        sq(0.95),
        sq(0.99)
    );

    let speedup = batched_tput / seq_tput.max(1e-9);
    println!("\ncross-request batching speedup at {CLIENTS} clients: {speedup:.2}x");
    if !opts.smoke {
        if cores >= MIN_GATE_CORES {
            assert!(
                speedup >= MIN_FULL_SPEEDUP,
                "SPEEDUP GATE FAILED: coalescing delivered {speedup:.2}x over one-at-a-time \
                 (contract: >= {MIN_FULL_SPEEDUP}x at {CLIENTS} clients on {cores} cores)"
            );
        } else {
            println!(
                "note: {cores}-core machine — the {MIN_FULL_SPEEDUP}x parallel-speedup \
                 contract needs >= {MIN_GATE_CORES} cores; enforcing the no-collapse \
                 floor ({MIN_SERIAL_SPEEDUP}x) instead"
            );
            assert!(
                speedup >= MIN_SERIAL_SPEEDUP,
                "SPEEDUP GATE FAILED: coalescing collapsed throughput to {speedup:.2}x \
                 of one-at-a-time even without parallelism in play"
            );
        }
    }

    let metrics = vec![
        Metric {
            name: "predictions",
            value: total as f64,
            unit: "count",
            tracked: false,
        },
        Metric {
            name: "client_threads",
            value: CLIENTS as f64,
            unit: "count",
            tracked: false,
        },
        Metric {
            name: "machine_cores",
            value: cores as f64,
            unit: "count",
            tracked: false,
        },
        Metric {
            name: "batched_p50_us",
            value: q(0.50),
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "batched_p95_us",
            value: q(0.95),
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "batched_p99_us",
            value: q(0.99),
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "sequential_p50_us",
            value: sq(0.50),
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "sequential_p95_us",
            value: sq(0.95),
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "sequential_p99_us",
            value: sq(0.99),
            unit: "us",
            tracked: false,
        },
        Metric {
            name: "batched_throughput_per_s",
            value: batched_tput,
            unit: "1/s",
            tracked: false,
        },
        Metric {
            name: "sequential_throughput_per_s",
            value: seq_tput,
            unit: "1/s",
            tracked: false,
        },
        Metric {
            name: "model_hit_rate",
            value: slo.hit_rate(),
            unit: "ratio",
            tracked: false,
        },
        Metric {
            name: "batched_vs_sequential",
            value: speedup,
            unit: "ratio",
            tracked: true,
        },
    ];

    println!("\n{:>28} {:>14} {:>8} {:>8}", "metric", "value", "unit", "tracked");
    for m in &metrics {
        println!("{:>28} {:>14.4} {:>8} {:>8}", m.name, m.value, m.unit, m.tracked);
    }

    if let Some(baseline_path) = &opts.check {
        check_against(baseline_path, &metrics);
        return;
    }

    let manifest_text = telemetry::manifest_json(&[
        ("bench_serving_predictions", telemetry::Value::UInt(total)),
        ("bench_serving_clients", telemetry::Value::UInt(CLIENTS as u64)),
    ]);
    let manifest: serde::Value =
        serde_json::from_str(&manifest_text).expect("telemetry manifest is valid JSON");
    let report = Report { schema: "raal.bench_serving/v1", manifest, metrics };
    let json = serde_json::to_string(&report).expect("serialise report");
    std::fs::write(&opts.out, json + "\n").expect("write report");
    println!("\n  -> wrote {}", opts.out.display());
    telemetry::shutdown();
}

/// Compares tracked metrics against a committed baseline, failing the
/// process when any ratio regressed more than [`TOLERANCE`].
fn check_against(baseline_path: &std::path::Path, metrics: &[Metric]) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", baseline_path.display()));
    let baseline: serde::Value = serde_json::from_str(&text).expect("baseline parses as JSON");
    let entries = match baseline.get("metrics") {
        Some(serde::Value::Array(a)) => a,
        _ => panic!("baseline {} has no metrics array", baseline_path.display()),
    };
    let baseline_value = |name: &str| -> Option<f64> {
        entries.iter().find_map(|m| {
            let is_name = matches!(m.get("name"), Some(serde::Value::Str(s)) if s == name);
            let tracked = matches!(m.get("tracked"), Some(serde::Value::Bool(true)));
            if !is_name || !tracked {
                return None;
            }
            match m.get("value") {
                Some(serde::Value::Float(v)) => Some(*v),
                Some(serde::Value::Int(v)) => Some(*v as f64),
                Some(serde::Value::UInt(v)) => Some(*v as f64),
                _ => None,
            }
        })
    };
    let mut failures = Vec::new();
    println!("\nperf ratchet vs {} (tolerance {TOLERANCE}):", baseline_path.display());
    for m in metrics.iter().filter(|m| m.tracked) {
        match baseline_value(m.name) {
            Some(base) => {
                let floor = base * (1.0 - TOLERANCE);
                let ok = m.value >= floor;
                println!(
                    "  {:>22}: {:.3} vs baseline {:.3} (floor {:.3}) {}",
                    m.name,
                    m.value,
                    base,
                    floor,
                    if ok { "ok" } else { "REGRESSED" }
                );
                if !ok {
                    failures.push(m.name);
                }
            }
            None => println!("  {:>22}: {:.3} (no baseline — new metric)", m.name, m.value),
        }
    }
    if !failures.is_empty() {
        eprintln!("perf ratchet FAILED: {failures:?} regressed more than {TOLERANCE:.0}%");
        std::process::exit(1);
    }
    println!("perf ratchet passed.");
}
