//! **Fig. 7** — scatter of actual vs. estimated cost, with and without
//! resource-aware attention, on IMDB and TPC-H test sets.
//!
//! Emits the raw (actual, estimated) pairs for plotting. Expected shape:
//! the resource-aware points hug the diagonal; the resource-blind points
//! scatter visibly wider; TPC-H is sparser with larger cost variance.

use bench::{build_model, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload};
use raal::{evaluate, train, train_test_split, ModelConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Fig. 7 — actual vs. estimated scatter, ± resource attention");
    let mut rows = Vec::new();

    for workload in [Workload::Imdb, Workload::Tpch] {
        let bench = bench::build_bench(workload, opts.full, opts.seed);
        let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
        let (train_set, test_set) = train_test_split(pipeline.samples.clone(), 0.8, opts.seed);
        let tcfg = train_config(opts.full, opts.seed);
        for (tag, cfg) in [
            ("without", ModelConfig::raal(pipeline.encoder.node_dim()).without_resources()),
            ("with", ModelConfig::raal(pipeline.encoder.node_dim())),
        ] {
            let mut model = build_model(cfg);
            train(&mut model, &train_set, &tcfg);
            let eval = evaluate(&model, &test_set);
            println!(
                "[{workload}] {tag:>8} resource attention: COR={:.4}, R2={:.4} over {} points",
                eval.correlation(),
                eval.r_squared(),
                eval.len()
            );
            for (actual, estimated) in eval.pairs() {
                rows.push(vec![
                    workload.to_string(),
                    tag.to_string(),
                    format!("{actual:.4}"),
                    format!("{estimated:.4}"),
                ]);
            }
        }
    }
    write_tsv(
        &opts.out_dir,
        "fig7_scatter.tsv",
        &["workload", "resource_attention", "actual_s", "estimated_s"],
        &rows,
    );
}
