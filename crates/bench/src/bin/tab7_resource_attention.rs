//! **Table VII** — the impact of the resource-aware attention layer.
//!
//! For both workloads (IMDB on "Tencent Cloud", TPC-H on "Ali Cloud") and
//! all four model variants, trains the model twice — without and with the
//! resource-aware attention layer — on resource-varying collections.
//! Expected shape: adding resource awareness improves every variant on
//! every metric, with the MSE gap especially large on TPC-H.

use bench::{
    build_model, fmt, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload,
};
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, MetricSummary, ModelConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Table VII — resource-aware attention on/off, both workloads");
    let mut rows = Vec::new();

    for workload in [Workload::Imdb, Workload::Tpch] {
        let bench = bench::build_bench(workload, opts.full, opts.seed);
        let structured = run_pipeline(&bench, opts.full, opts.seed, true);
        let unstructured = run_pipeline(&bench, opts.full, opts.seed, false);
        println!("\n[{workload}] records: {}", structured.samples.len());

        let (tr_s, te_s) = train_test_split(structured.samples.clone(), 0.8, opts.seed);
        let (tr_n, te_n) = train_test_split(unstructured.samples.clone(), 0.8, opts.seed);
        // Eight trainings per workload: trim the per-model budget in
        // reduced mode so the whole table stays minutes-scale.
        let mut tcfg = train_config(opts.full, opts.seed);
        if !opts.full {
            tcfg.epochs = 22;
        }

        let variants: Vec<(&str, ModelConfig, bool)> = vec![
            ("NE-LSTM", ModelConfig::raal(unstructured.encoder.node_dim()), false),
            ("NA-LSTM", ModelConfig::na_lstm(structured.encoder.node_dim()), true),
            ("RAAC", ModelConfig::raac(structured.encoder.node_dim()), true),
            ("RAAL", ModelConfig::raal(structured.encoder.node_dim()), true),
        ];

        println!(
            "{:>10} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
            "model", "RE-", "MSE-", "COR-", "R2-", "RE+", "MSE+", "COR+", "R2+"
        );
        for (name, cfg, uses_structure) in variants {
            let (tr, te) = if uses_structure {
                (&tr_s, &te_s)
            } else {
                (&tr_n, &te_n)
            };
            let run_one = |cfg: ModelConfig| -> MetricSummary {
                let mut model = build_model(cfg);
                train(&mut model, tr, &tcfg);
                evaluate(&model, te).summary(training_transform)
            };
            let without = run_one(cfg.clone().without_resources());
            let with = run_one(cfg);
            println!(
                "{:>10} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
                name,
                fmt(without.re),
                fmt(without.mse),
                fmt(without.cor),
                fmt(without.r2),
                fmt(with.re),
                fmt(with.mse),
                fmt(with.cor),
                fmt(with.r2)
            );
            rows.push(vec![
                workload.to_string(),
                name.to_string(),
                fmt(without.re),
                fmt(without.mse),
                fmt(without.cor),
                fmt(without.r2),
                fmt(with.re),
                fmt(with.mse),
                fmt(with.cor),
                fmt(with.r2),
            ]);
        }
    }

    write_tsv(
        &opts.out_dir,
        "tab7_resource_attention.tsv",
        &[
            "workload",
            "model",
            "RE_without",
            "MSE_without",
            "COR_without",
            "R2_without",
            "RE_with",
            "MSE_with",
            "COR_with",
            "R2_with",
        ],
        &rows,
    );
}
