//! **Table IX** — online estimation latency for 100 queries.
//!
//! Times how long each cost model takes to estimate 100 plans: RAAL,
//! TLSTM (both learned, milliseconds for the whole batch) and GPSJ (the
//! analytical model the paper reports at up to 50 ms *per plan*; our
//! from-scratch GPSJ is a simple formula, so we report it as measured and
//! note the difference). Expected shape: learned-model inference is
//! negligible and RAAL ≈ TLSTM.
//!
//! Also benchmarks the RAAL inference engine itself:
//! * autograd-tape forward (`predict_seconds_tape`, the training path)
//!   vs the tape-free fast path (`predict_seconds`);
//! * `predict_batch` (threaded sharding of the fast path);
//! * a 64-configuration resource sweep per plan, naive (full forward per
//!   configuration) vs `PlanContext` reuse (`predict_with_context`);
//! * the quantized tier (`FrozenModel`, int8 weights) one plan at a time
//!   and as one cross-plan packed GEMM (`predict_packed`).

use baselines::gpsj::{GpsjModel, GpsjParams};
use baselines::tlstm::{train_tlstm, TlstmConfig, TlstmModel};
use bench::{build_model, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload};
use raal::{train, FrozenModel, ModelConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Table IX — online estimation time for 100 queries");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    let tcfg = {
        let mut t = train_config(false, opts.seed);
        t.epochs = 3; // weights don't matter for latency
        t
    };
    let train_subset: Vec<_> = pipeline.samples.iter().take(200).cloned().collect();

    let mut raal_model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    train(&mut raal_model, &train_subset, &tcfg);
    let mut tlstm = TlstmModel::new(TlstmConfig::new(pipeline.encoder.node_dim()));
    train_tlstm(&mut tlstm, &train_subset, &tcfg);
    let gpsj = GpsjModel::new(GpsjParams {
        data_scale: bench.engine.simulator().config().data_scale,
        ..GpsjParams::default()
    });

    // 100 query plans with their resources.
    let mut plans = Vec::new();
    for run in &pipeline.collection.plan_runs {
        if plans.len() >= 100 {
            break;
        }
        if run.plan_idx == 0 {
            let (res, _) = &run.observations[0];
            plans.push((run.plan.clone(), pipeline.encoder.encode(&run.plan), res.clone()));
        }
    }
    assert!(plans.len() >= 50, "need enough distinct queries");
    let n = plans.len().min(100);
    println!("timing {n} plan estimates per model (best of 5 passes)\n");

    // Telemetry's monotonic clock, so these numbers share the timebase of
    // every span/histogram in the emitted event log.
    let time_it = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = telemetry::clock_ns();
            f();
            best = best.min((telemetry::clock_ns() - t0) as f64 * 1e-6);
        }
        best
    };

    let cluster = bench.engine.simulator().cluster();
    let raal_ms = time_it(&|| {
        for (_, enc, res) in plans.iter().take(n) {
            std::hint::black_box(raal_model.predict_seconds(enc, &res.feature_vector(cluster)));
        }
    });
    let tlstm_ms = time_it(&|| {
        for (_, enc, _) in plans.iter().take(n) {
            std::hint::black_box(tlstm.predict_seconds(enc));
        }
    });
    let gpsj_ms = time_it(&|| {
        for (plan, _, res) in plans.iter().take(n) {
            std::hint::black_box(gpsj.estimate_seconds(plan, res));
        }
    });

    println!("{:>8} {:>16} {:>16}", "model", "total(ms)", "per-plan(ms)");
    let mut rows = Vec::new();
    for (name, ms) in [("RAAL", raal_ms), ("TLSTM", tlstm_ms), ("GPSJ", gpsj_ms)] {
        println!("{name:>8} {ms:>16.3} {:>16.5}", ms / n as f64);
        rows.push(vec![name.to_string(), format!("{ms:.3}"), format!("{:.5}", ms / n as f64)]);
    }
    println!(
        "\nnote: the paper's GPSJ costs up to 50 ms/plan inside Spark's optimizer; \
         our reimplementation is a bare formula, so its absolute latency is smaller, \
         while the learned models' ~microsecond-scale per-plan cost matches the paper's claim \
         that learned estimation overhead is negligible."
    );
    write_tsv(
        &opts.out_dir,
        "tab9_inference_latency.tsv",
        &["model", "total_ms_100_queries", "per_plan_ms"],
        &rows,
    );

    // ---- RAAL inference-engine breakdown: tape vs fast vs cached sweep.
    section("RAAL inference engine — tape vs fast path vs PlanContext");
    let tape_ms = time_it(&|| {
        for (_, enc, res) in plans.iter().take(n) {
            std::hint::black_box(
                raal_model.predict_seconds_tape(enc, &res.feature_vector(cluster)),
            );
        }
    });
    let fast_ms = raal_ms; // measured above via predict_seconds
    let batch_items: Vec<(&encoding::EncodedPlan, Vec<f32>)> = plans
        .iter()
        .take(n)
        .map(|(_, enc, res)| (enc, res.feature_vector(cluster)))
        .collect();
    let batch_refs: Vec<(&encoding::EncodedPlan, &[f32])> =
        batch_items.iter().map(|(e, f)| (*e, f.as_slice())).collect();
    let batch_ms = time_it(&|| {
        std::hint::black_box(raal_model.predict_batch(&batch_refs));
    });

    // 64-configuration resource sweep over the first plans: the naive
    // loop re-runs the whole forward pass per configuration, the cached
    // loop reuses each plan's resource-independent PlanContext.
    let sweep_plans = 8.min(n);
    let sweep_configs: Vec<Vec<f32>> = (0..64)
        .map(|i| {
            let (_, _, base) = &plans[i % sweep_plans];
            let mut f = base.feature_vector(cluster);
            let s = 0.25 + 0.75 * (i as f32 / 63.0);
            f.iter_mut().for_each(|x| *x *= s);
            f
        })
        .collect();
    let naive_sweep_ms = time_it(&|| {
        for (_, enc, _) in plans.iter().take(sweep_plans) {
            for cfg in &sweep_configs {
                std::hint::black_box(raal_model.predict_seconds(enc, cfg));
            }
        }
    });
    let cached_sweep_ms = time_it(&|| {
        for (_, enc, _) in plans.iter().take(sweep_plans) {
            let ctx = raal_model.plan_context(enc);
            for cfg in &sweep_configs {
                std::hint::black_box(raal_model.predict_with_context(&ctx, cfg));
            }
        }
    });

    // ---- Quantized tier: int8 weights, one plan at a time and packed.
    // Freezing consumes the model, so this comes after the f32 rows.
    let frozen = FrozenModel::freeze(raal_model);
    let quant_ms = time_it(&|| {
        for (_, enc, res) in plans.iter().take(n) {
            std::hint::black_box(frozen.predict_seconds(enc, &res.feature_vector(cluster)));
        }
    });
    let packed_ms = time_it(&|| {
        std::hint::black_box(frozen.predict_packed(&batch_refs));
    });

    let single_speedup = tape_ms / fast_ms;
    let sweep_speedup = naive_sweep_ms / cached_sweep_ms;
    println!("{:>24} {:>12} {:>12}", "path", "total(ms)", "speedup");
    println!("{:>24} {tape_ms:>12.3} {:>12}", "tape (reference)", "1.0x");
    println!("{:>24} {fast_ms:>12.3} {:>11.1}x", "fast path", single_speedup);
    println!("{:>24} {batch_ms:>12.3} {:>11.1}x", "fast path (batched)", tape_ms / batch_ms);
    println!("{:>24} {quant_ms:>12.3} {:>11.1}x", "quantized (int8)", tape_ms / quant_ms);
    println!("{:>24} {packed_ms:>12.3} {:>11.1}x", "quantized packed", tape_ms / packed_ms);
    println!("\nresource sweep: {sweep_plans} plans x {} configurations", sweep_configs.len());
    println!("{:>24} {naive_sweep_ms:>12.3} {:>12}", "naive (full forward)", "1.0x");
    println!("{:>24} {cached_sweep_ms:>12.3} {:>11.1}x", "PlanContext cached", sweep_speedup);
    write_tsv(
        &opts.out_dir,
        "tab9_engine_breakdown.tsv",
        &["path", "total_ms", "speedup_vs_reference"],
        &[
            vec!["tape_100_plans".into(), format!("{tape_ms:.3}"), "1.00".into()],
            vec!["fast_100_plans".into(), format!("{fast_ms:.3}"), format!("{single_speedup:.2}")],
            vec![
                "batch_100_plans".into(),
                format!("{batch_ms:.3}"),
                format!("{:.2}", tape_ms / batch_ms),
            ],
            vec![
                "quant_100_plans".into(),
                format!("{quant_ms:.3}"),
                format!("{:.2}", tape_ms / quant_ms),
            ],
            vec![
                "packed_quant_100_plans".into(),
                format!("{packed_ms:.3}"),
                format!("{:.2}", tape_ms / packed_ms),
            ],
            vec!["sweep_naive_8x64".into(), format!("{naive_sweep_ms:.3}"), "1.00".into()],
            vec![
                "sweep_cached_8x64".into(),
                format!("{cached_sweep_ms:.3}"),
                format!("{sweep_speedup:.2}"),
            ],
        ],
    );

    // Flush counter/histogram summaries so a telemetry-enabled run
    // (including the quantized-tier counters) validates end to end.
    telemetry::shutdown();
}
