//! **Table IX** — online estimation latency for 100 queries.
//!
//! Times how long each cost model takes to estimate 100 plans: RAAL,
//! TLSTM (both learned, milliseconds for the whole batch) and GPSJ (the
//! analytical model the paper reports at up to 50 ms *per plan*; our
//! from-scratch GPSJ is a simple formula, so we report it as measured and
//! note the difference). Expected shape: learned-model inference is
//! negligible and RAAL ≈ TLSTM.

use baselines::gpsj::{GpsjModel, GpsjParams};
use baselines::tlstm::{train_tlstm, TlstmConfig, TlstmModel};
use bench::{build_model, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload};
use raal::{train, ModelConfig};
use std::time::Instant;

fn main() {
    let opts = HarnessOpts::from_env();
    section("Table IX — online estimation time for 100 queries");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    let tcfg = {
        let mut t = train_config(false, opts.seed);
        t.epochs = 3; // weights don't matter for latency
        t
    };
    let train_subset: Vec<_> = pipeline.samples.iter().take(200).cloned().collect();

    let mut raal_model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    train(&mut raal_model, &train_subset, &tcfg);
    let mut tlstm = TlstmModel::new(TlstmConfig::new(pipeline.encoder.node_dim()));
    train_tlstm(&mut tlstm, &train_subset, &tcfg);
    let gpsj = GpsjModel::new(GpsjParams {
        data_scale: bench.engine.simulator().config().data_scale,
        ..GpsjParams::default()
    });

    // 100 query plans with their resources.
    let mut plans = Vec::new();
    for run in &pipeline.collection.plan_runs {
        if plans.len() >= 100 {
            break;
        }
        if run.plan_idx == 0 {
            let (res, _) = &run.observations[0];
            plans.push((run.plan.clone(), pipeline.encoder.encode(&run.plan), res.clone()));
        }
    }
    assert!(plans.len() >= 50, "need enough distinct queries");
    let n = plans.len().min(100);
    println!("timing {n} plan estimates per model (best of 5 passes)\n");

    let time_it = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1000.0);
        }
        best
    };

    let cluster = bench.engine.simulator().cluster();
    let raal_ms = time_it(&|| {
        for (_, enc, res) in plans.iter().take(n) {
            std::hint::black_box(raal_model.predict_seconds(enc, &res.feature_vector(cluster)));
        }
    });
    let tlstm_ms = time_it(&|| {
        for (_, enc, _) in plans.iter().take(n) {
            std::hint::black_box(tlstm.predict_seconds(enc));
        }
    });
    let gpsj_ms = time_it(&|| {
        for (plan, _, res) in plans.iter().take(n) {
            std::hint::black_box(gpsj.estimate_seconds(plan, res));
        }
    });

    println!("{:>8} {:>16} {:>16}", "model", "total(ms)", "per-plan(ms)");
    let mut rows = Vec::new();
    for (name, ms) in [("RAAL", raal_ms), ("TLSTM", tlstm_ms), ("GPSJ", gpsj_ms)] {
        println!("{name:>8} {ms:>16.3} {:>16.5}", ms / n as f64);
        rows.push(vec![
            name.to_string(),
            format!("{ms:.3}"),
            format!("{:.5}", ms / n as f64),
        ]);
    }
    println!(
        "\nnote: the paper's GPSJ costs up to 50 ms/plan inside Spark's optimizer; \
         our reimplementation is a bare formula, so its absolute latency is smaller, \
         while the learned models' ~microsecond-scale per-plan cost matches the paper's claim \
         that learned estimation overhead is negligible."
    );
    write_tsv(
        &opts.out_dir,
        "tab9_inference_latency.tsv",
        &["model", "total_ms_100_queries", "per_plan_ms"],
        &rows,
    );
}
