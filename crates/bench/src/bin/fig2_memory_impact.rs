//! **Fig. 2** — The impact of executor memory on the cost of candidate
//! query execution plans (paper Sec. III).
//!
//! Reproduces the four representative IMDB queries (single-table,
//! SMJ-leaning two-table, BHJ-leaning two-table, three-table mix), sweeps
//! executor memory 1–8 GB at 2 executors × 2 cores, and reports the
//! simulated time of each candidate plan. The paper's observations to
//! check: plan costs vary non-monotonically with memory, and the *optimal
//! plan flips* as memory changes.

use bench::{fmt, section, write_tsv, HarnessOpts};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{Engine, ResourceConfig, SimulatorConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    let rows = if opts.full { 20_000 } else { 4_000 };
    let data = workloads::imdb::generate(&workloads::imdb::ImdbConfig {
        title_rows: rows,
        seed: opts.seed,
    });
    let scale = data.simulated_scale();
    let queries = workloads::imdb::paper_section3_queries(&data);
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions { max_plans: 3, ..bench::planner_options(scale) },
        sparksim::ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );

    let memories: Vec<f64> = (1..=8).map(|m| m as f64).collect();
    let mut rows_out = Vec::new();

    for (name, sql) in &queries {
        section(&format!("Fig. 2 — {name}"));
        println!("query: {sql}");
        let plans = engine.plan_candidates(sql).expect("paper queries must plan");
        let execs: Vec<_> = plans
            .iter()
            .map(|p| engine.execute_plan(p).expect("paper queries must run"))
            .collect();

        print!("{:>8}", "mem(GB)");
        for i in 0..plans.len() {
            print!("{:>12}", format!("plan{}(s)", i + 1));
        }
        println!("{:>8}", "best");
        let mut flips = Vec::new();
        let mut prev_best = usize::MAX;
        for &mem in &memories {
            let res = ResourceConfig {
                executors: 2,
                cores_per_executor: 2,
                memory_per_executor_gb: mem,
                network_throughput_mbps: 120.0,
                disk_throughput_mbps: 200.0,
            };
            let mut times = Vec::new();
            for (i, plan) in plans.iter().enumerate() {
                // Average of three runs, as in the paper.
                let mut t = 0.0;
                for run in 0..3u64 {
                    t += engine.simulator().simulate(
                        plan,
                        &execs[i].metrics,
                        &res,
                        opts.seed ^ (run * 7717 + i as u64 * 131 + mem as u64),
                    );
                }
                times.push(t / 3.0);
            }
            let best = times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            if prev_best != usize::MAX && best != prev_best {
                flips.push(mem);
            }
            prev_best = best;
            print!("{mem:>8.0}");
            for t in &times {
                print!("{:>12}", fmt(*t));
            }
            println!("{:>8}", format!("plan{}", best + 1));
            let mut row = vec![name.to_string(), format!("{mem}")];
            row.extend(times.iter().map(|t| fmt(*t)));
            row.push(format!("plan{}", best + 1));
            while row.len() < 6 {
                row.insert(row.len() - 1, String::new());
            }
            rows_out.push(row);
        }
        if flips.is_empty() {
            println!("optimal plan stable across memories");
        } else {
            println!("optimal plan flips at memory {flips:?} GB  <-- paper's key observation");
        }
    }

    write_tsv(
        &opts.out_dir,
        "fig2_memory_impact.tsv",
        &["query", "memory_gb", "plan1_s", "plan2_s", "plan3_s", "best"],
        &rows_out,
    );
}
