//! **Extension (paper Sec. VI, future work)** — cold-start across
//! datasets.
//!
//! The paper's conclusion names cold-start query optimization on newly
//! loaded datasets as the open problem. This harness quantifies it:
//! train RAAL on the IMDB-like workload, then
//!   (a) evaluate zero-shot on TPC-H (unknown tables, unseen vocabulary),
//!   (b) fine-tune on a small TPC-H sample and re-evaluate,
//!   (c) compare with training on TPC-H from scratch.

use bench::{
    build_model, collection_config, fmt, section, train_config, w2v_config, write_tsv, HarnessOpts,
    Workload,
};
use encoding::tokenizer::plan_sentences;
use encoding::EncoderConfig;
use raal::dataset::collect;
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, ModelConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Extension — cold-start: IMDB-trained model on TPC-H");

    let imdb = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let tpch = bench::build_bench(Workload::Tpch, opts.full, opts.seed);

    // Shared encoder trained on the *union* corpus so the vocabulary can
    // at least represent TPC-H statements (cold-start on plan text alone).
    let imdb_coll = collect(
        &imdb.engine,
        &imdb.graph,
        &collection_config(Workload::Imdb, opts.full, opts.seed),
    );
    let tpch_coll = collect(
        &tpch.engine,
        &tpch.graph,
        &collection_config(Workload::Tpch, opts.full, opts.seed),
    );
    let mut corpus = Vec::new();
    for run in imdb_coll.plan_runs.iter().chain(&tpch_coll.plan_runs) {
        corpus.extend(plan_sentences(&run.plan));
    }
    let encoder = encoding::PlanEncoder::new(
        encoding::train_word2vec(&corpus, &w2v_config(opts.full)),
        EncoderConfig::default(),
    );
    let imdb_samples = imdb_coll.encode(&encoder, &imdb.engine);
    let tpch_samples = tpch_coll.encode(&encoder, &tpch.engine);
    println!("records: IMDB {}, TPC-H {}", imdb_samples.len(), tpch_samples.len());
    let (tpch_train, tpch_test) = train_test_split(tpch_samples, 0.8, opts.seed);
    let mut tcfg = train_config(opts.full, opts.seed);
    if !opts.full {
        tcfg.epochs = 22; // three trainings in this harness
    }

    // (a) zero-shot.
    let mut model = build_model(ModelConfig::raal(encoder.node_dim()));
    train(&mut model, &imdb_samples, &tcfg);
    let zero_shot = evaluate(&model, &tpch_test).summary(training_transform);

    // (b) fine-tune on 10% of the TPC-H training split.
    let few = &tpch_train[..(tpch_train.len() / 10).max(1)];
    let mut ft_cfg = tcfg.clone();
    ft_cfg.epochs = (tcfg.epochs / 2).max(1);
    ft_cfg.lr = tcfg.lr * 0.3;
    train(&mut model, few, &ft_cfg);
    let fine_tuned = evaluate(&model, &tpch_test).summary(training_transform);

    // (c) native TPC-H model.
    let mut native = build_model(ModelConfig::raal(encoder.node_dim()));
    train(&mut native, &tpch_train, &tcfg);
    let from_scratch = evaluate(&native, &tpch_test).summary(training_transform);

    println!("\n{:>24} {:>9} {:>9} {:>9} {:>9}", "setting", "RE", "MSE", "COR", "R2");
    let mut rows = Vec::new();
    for (name, s) in [
        ("zero-shot (IMDB only)", zero_shot),
        ("fine-tuned (10% TPC-H)", fine_tuned),
        ("trained on TPC-H", from_scratch),
    ] {
        println!(
            "{:>24} {:>9} {:>9} {:>9} {:>9}",
            name,
            fmt(s.re),
            fmt(s.mse),
            fmt(s.cor),
            fmt(s.r2)
        );
        rows.push(vec![name.to_string(), fmt(s.re), fmt(s.mse), fmt(s.cor), fmt(s.r2)]);
    }
    println!(
        "\nexpected shape: zero-shot trails badly; a small fine-tuning set \
         recovers most of the native model's accuracy — motivating the \
         paper's future-work direction."
    );
    write_tsv(
        &opts.out_dir,
        "ext_coldstart.tsv",
        &["setting", "RE", "MSE", "COR", "R2"],
        &rows,
    );
}
