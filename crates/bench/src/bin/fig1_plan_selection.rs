//! **Fig. 1** — Execution time of 20 queries under the default (rule-based
//! Catalyst) cost model vs. the tuned (RAAL-selected) plans.
//!
//! Trains RAAL on an IMDB-like collection, then for 20 held-out queries
//! compares the simulated time of Catalyst's default plan against the plan
//! RAAL picks for the current resources. The paper's shape: the tuned
//! model reduces the execution time of (nearly) every query.

use bench::{
    build_model, fmt, run_pipeline, section, train_config, write_tsv, HarnessOpts, Workload,
};
use raal::selection::evaluate_selection;
use raal::ModelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparksim::ResourceConfig;
use workloads::querygen::{generate_queries, QueryGenConfig};

fn main() {
    let opts = HarnessOpts::from_env();
    section("Fig. 1 — default vs. RAAL-tuned plan selection (IMDB)");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);
    let pipeline = run_pipeline(&bench, opts.full, opts.seed, true);
    println!(
        "collected {} records over {} plans ({} queries skipped)",
        pipeline.samples.len(),
        pipeline.collection.plan_runs.len(),
        pipeline.collection.skipped_queries
    );

    let mut model = build_model(ModelConfig::raal(pipeline.encoder.node_dim()));
    // Plan ranking needs a sharper model than the metric tables: spend
    // extra epochs here.
    let mut tcfg = train_config(opts.full, opts.seed);
    tcfg.epochs = if opts.full { 30 } else { 60 };
    let history = raal::train(&mut model, &pipeline.samples, &tcfg);
    println!(
        "trained RAAL: final loss {:.5} in {:.1}s",
        history.final_loss(),
        history.train_seconds
    );

    // 20 fresh queries (different seed stream than training).
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xF161);
    let queries = generate_queries(
        &bench.graph,
        &QueryGenConfig { max_joins: 3, ..QueryGenConfig::default() },
        20,
        &mut rng,
    );
    let res = ResourceConfig::default_for(bench.engine.simulator().cluster());

    println!(
        "\n{:>5} {:>12} {:>12} {:>9} {:>8}",
        "query", "default(s)", "tuned(s)", "speedup", "optimal"
    );
    let mut rows = Vec::new();
    let mut total_default = 0.0;
    let mut total_tuned = 0.0;
    let mut wins = 0usize;
    for (i, sql) in queries.iter().enumerate() {
        let Ok(outcome) =
            evaluate_selection(&bench.engine, &model, &pipeline.encoder, sql, &res, opts.seed)
        else {
            continue;
        };
        total_default += outcome.default_seconds;
        total_tuned += outcome.chosen_seconds;
        if outcome.chosen_seconds <= outcome.default_seconds {
            wins += 1;
        }
        println!(
            "{:>5} {:>12} {:>12} {:>9} {:>8}",
            format!("Q{}", i + 1),
            fmt(outcome.default_seconds),
            fmt(outcome.chosen_seconds),
            format!("{:.2}x", outcome.speedup()),
            if outcome.optimal() { "yes" } else { "no" }
        );
        rows.push(vec![
            format!("Q{}", i + 1),
            fmt(outcome.default_seconds),
            fmt(outcome.chosen_seconds),
            format!("{:.4}", outcome.speedup()),
            outcome.optimal().to_string(),
        ]);
    }
    println!(
        "\ntotal: default {}s, tuned {}s ({:.2}x overall; tuned <= default on {}/{} queries)",
        fmt(total_default),
        fmt(total_tuned),
        total_default / total_tuned.max(1e-9),
        wins,
        rows.len()
    );
    write_tsv(
        &opts.out_dir,
        "fig1_plan_selection.tsv",
        &["query", "default_s", "tuned_s", "speedup", "optimal"],
        &rows,
    );
}
