//! **Table V** — RAAL vs. TLSTM under *fixed* resources.
//!
//! The paper installs Spark locally and fixes the resources per query so
//! the relational-database baseline (TLSTM) gets its natural setting; the
//! RAAL resource input is then a constant vector. Expected shape: RAAL
//! still ahead on all four metrics (structure embedding + node-aware
//! attention), but by less than in the varying-resource setting.

use baselines::tlstm::{evaluate_tlstm, train_tlstm, TlstmConfig, TlstmModel};
use bench::{
    build_model, collection_config, fmt, section, train_config, w2v_config, write_tsv, HarnessOpts,
    Workload,
};
use encoding::EncoderConfig;
use raal::dataset::collect;
use raal::train::training_transform;
use raal::{evaluate, train, train_test_split, ModelConfig};
use sparksim::ResourceGrid;

fn main() {
    let opts = HarnessOpts::from_env();
    section("Table V — RAAL vs. TLSTM, fixed resources (IMDB)");
    let bench = bench::build_bench(Workload::Imdb, opts.full, opts.seed);

    // Fixed resources: a single grid point, no tenancy jitter.
    let mut cfg = collection_config(Workload::Imdb, opts.full, opts.seed);
    cfg.grid = ResourceGrid {
        executors: vec![2],
        cores_per_executor: vec![2],
        memory_gb: vec![4.0],
        throughput_jitter: 0.0,
    };
    cfg.resource_states_per_plan = 1;
    let collection = collect(&bench.engine, &bench.graph, &cfg);
    let encoder = collection.build_encoder(&w2v_config(opts.full), EncoderConfig::default());
    let samples = collection.encode(&encoder, &bench.engine);
    println!("records: {}", samples.len());
    let (train_set, test_set) = train_test_split(samples, 0.8, opts.seed);
    let tcfg = train_config(opts.full, opts.seed);

    let mut raal_model = build_model(ModelConfig::raal(encoder.node_dim()));
    let h1 = train(&mut raal_model, &train_set, &tcfg);
    let raal_summary = evaluate(&raal_model, &test_set).summary(training_transform);

    let mut tlstm = TlstmModel::new(TlstmConfig::new(encoder.node_dim()));
    let h2 = train_tlstm(&mut tlstm, &train_set, &tcfg);
    let tlstm_summary = evaluate_tlstm(&tlstm, &test_set).summary(training_transform);

    println!(
        "\n{:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "model", "RE", "MSE", "COR", "R2", "train(s)"
    );
    let mut rows = Vec::new();
    for (name, s, t) in [
        ("TLSTM", tlstm_summary, h2.train_seconds),
        ("RAAL", raal_summary, h1.train_seconds),
    ] {
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
            name,
            fmt(s.re),
            fmt(s.mse),
            fmt(s.cor),
            fmt(s.r2),
            fmt(t)
        );
        rows.push(vec![name.to_string(), fmt(s.re), fmt(s.mse), fmt(s.cor), fmt(s.r2), fmt(t)]);
    }
    write_tsv(
        &opts.out_dir,
        "tab5_vs_tlstm.tsv",
        &["model", "RE", "MSE", "COR", "R2", "train_s"],
        &rows,
    );
}
