//! Criterion microbenchmarks for the substrate: planning, execution and
//! time simulation throughput (the data-collection hot path).

use criterion::{criterion_group, criterion_main, Criterion};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use std::hint::black_box;
use workloads::imdb::{generate, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
                   WHERE t.id = mc.movie_id AND t.id = mk.movie_id \
                   AND mc.company_id < 60 AND mk.keyword_id < 20";

fn engine() -> Engine {
    let data = generate(&ImdbConfig { title_rows: 1000, seed: 9 });
    let scale = data.simulated_scale();
    Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    )
}

fn bench_substrate(c: &mut Criterion) {
    let engine = engine();
    let plans = engine.plan_candidates(SQL).expect("plans");
    let exec = engine.execute_plan(&plans[0]).expect("runs");
    let res = ResourceConfig::default_for(engine.simulator().cluster());

    let mut group = c.benchmark_group("substrate");
    group.bench_function("parse_resolve_enumerate", |b| {
        b.iter(|| black_box(engine.plan_candidates(black_box(SQL)).unwrap().len()))
    });
    group.bench_function("execute_3way_join", |b| {
        b.iter(|| black_box(engine.execute_plan(black_box(&plans[0])).unwrap().batch.num_rows()))
    });
    group.bench_function("simulate_one_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(engine.simulator().simulate(&plans[0], &exec.metrics, &res, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
