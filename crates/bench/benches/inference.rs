//! Criterion microbenchmarks for Table IX: per-plan cost-estimation
//! latency of RAAL, TLSTM and GPSJ.

use baselines::gpsj::{GpsjModel, GpsjParams};
use baselines::tlstm::{TlstmConfig, TlstmModel};
use criterion::{criterion_group, criterion_main, Criterion};
use raal::{CostModel, ModelConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use std::hint::black_box;
use workloads::imdb::{generate, ImdbConfig};

struct Setup {
    raal: CostModel,
    tlstm: TlstmModel,
    gpsj: GpsjModel,
    plan: sparksim::PhysicalPlan,
    encoded: encoding::EncodedPlan,
    features: Vec<f32>,
    resources: ResourceConfig,
}

fn setup() -> Setup {
    let data = generate(&ImdbConfig { title_rows: 500, seed: 9 });
    let scale = data.simulated_scale();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );
    let plans = engine
        .plan_candidates(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
             WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mk.keyword_id < 10",
        )
        .expect("plans");
    let plan = plans[0].clone();
    let corpus = encoding::tokenizer::plan_sentences(&plan);
    let encoder = encoding::PlanEncoder::new(
        encoding::train_word2vec(
            &corpus,
            &encoding::W2vConfig { dim: 32, epochs: 1, ..Default::default() },
        ),
        encoding::EncoderConfig::default(),
    );
    let encoded = encoder.encode(&plan);
    let resources = ResourceConfig::default_for(engine.simulator().cluster());
    let features = resources.feature_vector(engine.simulator().cluster());
    Setup {
        raal: CostModel::new(ModelConfig::raal(encoder.node_dim())),
        tlstm: TlstmModel::new(TlstmConfig::new(encoder.node_dim())),
        gpsj: GpsjModel::new(GpsjParams { data_scale: scale, ..GpsjParams::default() }),
        plan,
        encoded,
        features,
        resources,
    }
}

fn bench_inference(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("inference_per_plan");
    group.bench_function("raal_predict", |b| {
        b.iter(|| black_box(s.raal.predict_seconds(black_box(&s.encoded), &s.features)))
    });
    group.bench_function("raal_predict_tape", |b| {
        b.iter(|| black_box(s.raal.predict_seconds_tape(black_box(&s.encoded), &s.features)))
    });
    group.bench_function("raal_predict_cached_context", |b| {
        let ctx = s.raal.plan_context(&s.encoded);
        b.iter(|| black_box(s.raal.predict_with_context(black_box(&ctx), &s.features)))
    });
    group.bench_function("tlstm_predict", |b| {
        b.iter(|| black_box(s.tlstm.predict_seconds(black_box(&s.encoded))))
    });
    group.bench_function("gpsj_estimate", |b| {
        b.iter(|| black_box(s.gpsj.estimate_seconds(black_box(&s.plan), &s.resources)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
