//! Microbenchmarks for the `nn` tensor and inference kernels at the
//! shapes the RAAL model actually uses (hidden 64, latent K 32, LSTM
//! gate blocks 4x64): dense matmul (branch-free i-k-j), blocked
//! transpose, and the fused tape-free LSTM step vs the tape.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nn::infer::{self, InferArena};
use nn::layers::LstmCell;
use nn::{Graph, ParamStore, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn filled(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
}

fn bench_tensor_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);

    let mut group = c.benchmark_group("tensor_matmul");
    // The LSTM step's dominant product: 1 x 64 state times 64 x 256 gates.
    let h = filled(&mut rng, 1, 64);
    let wh = filled(&mut rng, 64, 256);
    group.bench_function("matmul_1x64_64x256", |b| b.iter(|| black_box(h.matmul(&wh))));
    // Node-projection shape: a 24-node plan against a 64 x 32 projection.
    let hs = filled(&mut rng, 24, 64);
    let wk = filled(&mut rng, 64, 32);
    group.bench_function("matmul_24x64_64x32", |b| b.iter(|| black_box(hs.matmul(&wk))));
    // Same products through the allocation-free kernel.
    let mut out = vec![0.0f32; 256];
    group.bench_function("matmul_into_1x64_64x256", |b| {
        b.iter(|| {
            infer::matmul_into(h.data(), 1, 64, wh.data(), 256, &mut out);
            black_box(out[0])
        })
    });
    group.finish();

    let mut group = c.benchmark_group("tensor_transpose");
    let small = filled(&mut rng, 24, 64);
    group.bench_function("transpose_24x64", |b| b.iter(|| black_box(small.transpose())));
    let big = filled(&mut rng, 256, 256);
    group.bench_function("transpose_256x256", |b| b.iter(|| black_box(big.transpose())));
    group.finish();

    let mut group = c.benchmark_group("lstm_seq_24_nodes");
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, &mut rng, "lstm", 40, 64);
    let xs = filled(&mut rng, 24, 40);
    group.bench_function("tape_forward_seq", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let xv = g.input(xs.clone());
            let hs = cell.forward_seq(&mut g, &store, xv);
            black_box(g.value(hs).get(23, 0))
        })
    });
    group.bench_function("fused_infer_seq", |b| {
        let mut arena = InferArena::new();
        b.iter(|| {
            let out = cell.infer_seq(&store, xs.data(), 24, &mut arena);
            let head = out[23 * 64];
            arena.give(out);
            black_box(head)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
