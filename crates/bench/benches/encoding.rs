//! Criterion microbenchmarks for the feature-encoding path: statement
//! tokenization, word2vec training (small corpus) and full plan encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use encoding::tokenizer::{plan_sentences, tokenize_statement};
use encoding::{train_word2vec, EncoderConfig, PlanEncoder, W2vConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, SimulatorConfig};
use std::hint::black_box;
use workloads::imdb::{generate, ImdbConfig};

fn bench_encoding(c: &mut Criterion) {
    let data = generate(&ImdbConfig { title_rows: 500, seed: 9 });
    let scale = data.simulated_scale();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );
    let plan = engine
        .plan_candidates(
            "SELECT COUNT(*) FROM title t, movie_info_idx mi_idx \
             WHERE t.id = mi_idx.movie_id AND t.kind_id < 5",
        )
        .expect("plans")
        .remove(0);
    let statement = plan.statement(0);
    let corpus = plan_sentences(&plan);
    let encoder = PlanEncoder::new(
        train_word2vec(&corpus, &W2vConfig { dim: 32, epochs: 1, ..Default::default() }),
        EncoderConfig::default(),
    );

    let mut group = c.benchmark_group("encoding");
    group.bench_function("tokenize_statement", |b| {
        b.iter(|| black_box(tokenize_statement(black_box(&statement)).len()))
    });
    group.bench_function("word2vec_train_small", |b| {
        b.iter(|| {
            black_box(
                train_word2vec(
                    black_box(&corpus),
                    &W2vConfig { dim: 16, epochs: 1, ..Default::default() },
                )
                .vocab_size(),
            )
        })
    });
    group.bench_function("encode_plan", |b| {
        b.iter(|| black_box(encoder.encode(black_box(&plan)).num_nodes()))
    });
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
