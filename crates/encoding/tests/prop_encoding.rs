//! Property tests for the encoding crate: tokenizer totality, word2vec
//! determinism and shape guarantees, encoder dimensional invariants.

use encoding::tokenizer::tokenize_statement;
use encoding::word2vec::{train, W2vConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The tokenizer must be total: any string (including garbage) yields
    /// a token list without panicking, and never yields empty tokens.
    #[test]
    fn tokenizer_is_total_and_produces_nonempty_tokens(s in ".{0,120}") {
        let tokens = tokenize_statement(&s);
        for t in &tokens {
            prop_assert!(!t.is_empty(), "empty token from {s:?}");
        }
    }

    /// Tokenizing a statement twice gives identical results.
    #[test]
    fn tokenizer_is_deterministic(s in ".{0,120}") {
        prop_assert_eq!(tokenize_statement(&s), tokenize_statement(&s));
    }

    /// Numbers with the same digit count collapse to the same bucket.
    #[test]
    fn numeric_bucketing_by_magnitude(a in 10u64..99, b in 10u64..99) {
        let ta = tokenize_statement(&format!("x < {a}"));
        let tb = tokenize_statement(&format!("x < {b}"));
        prop_assert_eq!(ta.last(), tb.last());
    }

    /// Every trained word vector has the configured dimension and is
    /// finite; embed_mean preserves the dimension.
    #[test]
    fn word2vec_shapes_and_finiteness(
        sentences in prop::collection::vec(
            prop::collection::vec("[a-e]{1,4}", 1..8),
            1..12,
        ),
        dim in 2usize..16,
    ) {
        let model = train(&sentences, &W2vConfig {
            dim,
            epochs: 1,
            ..W2vConfig::default()
        });
        for sentence in &sentences {
            for word in sentence {
                let v = model.vector(word).expect("trained word in vocab");
                prop_assert_eq!(v.len(), dim);
                prop_assert!(v.iter().all(|x| x.is_finite()));
            }
        }
        let mean = model.embed_mean(&sentences[0]);
        prop_assert_eq!(mean.len(), dim);
        prop_assert!(mean.iter().all(|x| x.is_finite()));
    }

    /// Similarity is symmetric and bounded.
    #[test]
    fn word2vec_similarity_symmetric(
        sentences in prop::collection::vec(
            prop::collection::vec("[a-c]{1,3}", 2..6),
            2..8,
        ),
    ) {
        let model = train(&sentences, &W2vConfig { dim: 8, epochs: 1, ..Default::default() });
        let words: Vec<&String> = sentences.iter().flatten().collect();
        let (a, b) = (words[0], words[words.len() - 1]);
        let ab = model.similarity(a, b).unwrap();
        let ba = model.similarity(b, a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&ab));
    }
}
