//! End-to-end plan/sample encoding: the paper's Sec. IV-C.
//!
//! Each plan node becomes the concatenation of
//! * a **node-semantic embedding** — the mean word2vec vector of the
//!   node's execution-statement tokens,
//! * a **one-hot operator block** (Table II),
//! * a **structure embedding** — the signed degree row (children +1,
//!   parent −1) padded to `max_nodes`,
//! * two normalised per-node **statistics** (log-scaled estimated rows and
//!   bytes from the optimizer).
//!
//! A full training [`Sample`] adds the normalised resource vector (Eq. 1),
//! plan-level statistics, and the observed execution time.

use crate::onehot;
use crate::tokenizer::tokenize_statement;
use crate::word2vec::Word2Vec;
use serde::{Deserialize, Serialize};
use sparksim::plan::physical::PhysicalOp;
use sparksim::resource::{ClusterConfig, ResourceConfig};
use sparksim::PhysicalPlan;

/// Encoder dimensions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Structure-embedding width: plans longer than this have their
    /// structure rows truncated (semantic features keep working).
    pub max_nodes: usize,
    /// Include the structure block (disabled for the NE-LSTM ablation).
    pub structure: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self { max_nodes: 48, structure: true }
    }
}

/// Number of per-node statistic features.
pub const NODE_STAT_FEATURES: usize = 2;
/// Number of plan-level statistic features.
pub const PLAN_STAT_FEATURES: usize = 8;

/// An encoded plan: per-node feature rows plus the child lists the
/// node-aware attention layer consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedPlan {
    /// `num_nodes` rows of `node_dim` features, in execution order.
    pub node_features: Vec<Vec<f32>>,
    /// Children ids per node (indices into `node_features`).
    pub children: Vec<Vec<usize>>,
    /// Plan-level statistics (see [`plan_stats`]).
    pub plan_stats: Vec<f32>,
}

impl EncodedPlan {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_features.len()
    }

    /// Structural validation of the child lists ([`analysis::dag`]):
    /// in-range, topologically ordered (children strictly precede
    /// parents, ruling out cycles), duplicate-free, single-parent, and a
    /// unique root that is the last node. Use
    /// [`PlanEncoder::validate`] to additionally cross-check the signed
    /// structure rows.
    pub fn validate(&self) -> Result<(), analysis::dag::DagError> {
        analysis::dag::validate_children(&self.children)
    }
}

/// One training record for the deep cost models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Encoded plan.
    pub plan: EncodedPlan,
    /// Normalised resource features (Eq. 1, Table I order).
    pub resources: Vec<f32>,
    /// Observed execution seconds (the label).
    pub seconds: f64,
}

/// Encodes plans into model inputs.
#[derive(Debug, Clone)]
pub struct PlanEncoder {
    w2v: Word2Vec,
    cfg: EncoderConfig,
}

impl PlanEncoder {
    /// Creates an encoder from a trained word2vec model.
    pub fn new(w2v: Word2Vec, cfg: EncoderConfig) -> Self {
        Self { w2v, cfg }
    }

    /// The per-node feature width this encoder produces.
    pub fn node_dim(&self) -> usize {
        self.w2v.dim()
            + onehot::DIM
            + if self.cfg.structure {
                self.cfg.max_nodes
            } else {
                0
            }
            + NODE_STAT_FEATURES
    }

    /// The configuration in use.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// The underlying word2vec model.
    pub fn word2vec(&self) -> &Word2Vec {
        &self.w2v
    }

    /// Encodes a physical plan.
    pub fn encode(&self, plan: &PhysicalPlan) -> EncodedPlan {
        let parents = plan.parents();
        let n = plan.len();
        let mut node_features = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n);
        for id in 0..n {
            let mut row = Vec::with_capacity(self.node_dim());
            // Semantic block.
            let tokens = tokenize_statement(&plan.statement(id));
            row.extend(self.w2v.embed_mean(&tokens));
            // Operator one-hot block.
            row.extend(onehot::encode_operator(plan.node(id).op.name()));
            // Structure block (signed degrees, truncated to max_nodes).
            if self.cfg.structure {
                let full = plan.structure_row(id, &parents);
                let mut block = vec![0.0f32; self.cfg.max_nodes];
                for (i, &v) in full.iter().take(self.cfg.max_nodes).enumerate() {
                    block[i] = v;
                }
                row.extend(block);
            }
            // Node statistics.
            row.push(log_norm(plan.node(id).est_rows, 12.0));
            row.push(log_norm(plan.node(id).est_bytes, 15.0));
            debug_assert_eq!(row.len(), self.node_dim());
            node_features.push(row);
            children.push(plan.node(id).children.clone());
        }
        let encoded = EncodedPlan {
            node_features,
            children,
            plan_stats: plan_stats(plan),
        };
        // Static DAG check: a malformed physical plan (or a bug in the
        // structure-row emission above) is an internal invariant
        // violation — fail loudly here, before the plan can reach the
        // model and mispredict silently.
        if let Err(e) = self.validate(&encoded) {
            panic!("plan encoding produced an invalid DAG: {e}");
        }
        encoded
    }

    /// Full static validation of an encoded plan: the child-list
    /// invariants of [`EncodedPlan::validate`] plus a cross-check that
    /// every `+1` child entry in the signed structure rows is mirrored
    /// by the child's `−1` parent entry (entries beyond the `max_nodes`
    /// truncation window are exempt, matching how they are emitted).
    pub fn validate(&self, plan: &EncodedPlan) -> Result<(), analysis::dag::DagError> {
        if !self.cfg.structure {
            return plan.validate();
        }
        let offset = self.w2v.dim() + onehot::DIM;
        let rows: Vec<Vec<f32>> = plan
            .node_features
            .iter()
            .map(|r| r[offset..offset + self.cfg.max_nodes].to_vec())
            .collect();
        analysis::dag::validate_signed_rows(&plan.children, &rows, self.cfg.max_nodes)
    }

    /// Encodes a full training sample.
    pub fn encode_sample(
        &self,
        plan: &PhysicalPlan,
        resources: &ResourceConfig,
        cluster: &ClusterConfig,
        seconds: f64,
    ) -> Sample {
        Sample {
            plan: self.encode(plan),
            resources: resources.feature_vector(cluster),
            seconds,
        }
    }
}

/// `log10(1 + x) / denom`, clamped to [0, 1] — the normalisation used for
/// cardinality-like features.
pub fn log_norm(x: f64, denom: f64) -> f32 {
    (((1.0 + x.max(0.0)).log10()) / denom).clamp(0.0, 1.0) as f32
}

/// Plan-level statistics: scan volume, estimated output, operator mix.
pub fn plan_stats(plan: &PhysicalPlan) -> Vec<f32> {
    let mut n_join_smj = 0usize;
    let mut n_join_bhj = 0usize;
    let mut n_exchange = 0usize;
    let mut n_sort = 0usize;
    for node in plan.nodes() {
        match &node.op {
            PhysicalOp::SortMergeJoin { .. } => n_join_smj += 1,
            PhysicalOp::BroadcastHashJoin { .. } | PhysicalOp::ShuffledHashJoin { .. } => {
                n_join_bhj += 1
            }
            PhysicalOp::Sort { .. } => n_sort += 1,
            op if op.is_exchange() => n_exchange += 1,
            _ => {}
        }
    }
    let root = plan.node(plan.root());
    vec![
        log_norm(plan.scan_bytes(), 15.0),
        log_norm(root.est_rows, 12.0),
        log_norm(root.est_bytes, 15.0),
        (plan.len() as f32 / 64.0).min(1.0),
        (n_join_smj as f32 / 8.0).min(1.0),
        (n_join_bhj as f32 / 8.0).min(1.0),
        (n_exchange as f32 / 12.0).min(1.0),
        (n_sort as f32 / 8.0).min(1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word2vec::{train, W2vConfig};
    use sparksim::expr::{CmpOp, Expr};
    use sparksim::plan::physical::{AggMode, PhysicalOp, PhysicalPlan};
    use sparksim::plan::spec::AggSpec;
    use sparksim::schema::ColumnRef;
    use sparksim::sql::ast::AggFunc;
    use sparksim::types::Value;

    fn plan() -> PhysicalPlan {
        let mut p = PhysicalPlan::new();
        let scan = p.add(
            PhysicalOp::FileScan {
                binding: "t".into(),
                table: "title".into(),
                output: vec![ColumnRef::new("t", "id")],
                pushed_filter: Some(Expr::cmp(ColumnRef::new("t", "id"), CmpOp::Lt, Value::Int(7))),
            },
            vec![],
            100.0,
            800.0,
        );
        let agg = p.add(
            PhysicalOp::HashAggregate {
                mode: AggMode::Partial,
                group_by: vec![],
                aggs: vec![AggSpec { func: AggFunc::Count, arg: None }],
            },
            vec![scan],
            1.0,
            8.0,
        );
        let ex = p.add(PhysicalOp::ExchangeSingle, vec![agg], 1.0, 8.0);
        p.add(
            PhysicalOp::HashAggregate {
                mode: AggMode::Final,
                group_by: vec![],
                aggs: vec![AggSpec { func: AggFunc::Count, arg: None }],
            },
            vec![ex],
            1.0,
            8.0,
        );
        p
    }

    fn encoder() -> PlanEncoder {
        let corpus = crate::tokenizer::plan_sentences(&plan());
        let w2v = train(&corpus, &W2vConfig { dim: 8, epochs: 2, ..Default::default() });
        PlanEncoder::new(w2v, EncoderConfig { max_nodes: 16, structure: true })
    }

    #[test]
    fn node_rows_have_declared_dim() {
        let enc = encoder();
        let e = enc.encode(&plan());
        assert_eq!(e.num_nodes(), 4);
        for row in &e.node_features {
            assert_eq!(row.len(), enc.node_dim());
        }
        assert_eq!(e.plan_stats.len(), PLAN_STAT_FEATURES);
    }

    #[test]
    fn structure_block_encodes_tree() {
        let enc = encoder();
        let e = enc.encode(&plan());
        let w2v_dim = 8;
        let start = w2v_dim + onehot::DIM;
        // Node 0 (scan): parent is node 1 -> -1 at offset 1.
        assert_eq!(e.node_features[0][start + 1], -1.0);
        // Node 1: child 0 -> +1 at offset 0, parent 2 -> -1 at offset 2.
        assert_eq!(e.node_features[1][start], 1.0);
        assert_eq!(e.node_features[1][start + 2], -1.0);
    }

    #[test]
    fn structure_can_be_disabled() {
        let corpus = crate::tokenizer::plan_sentences(&plan());
        let w2v = train(&corpus, &W2vConfig { dim: 8, epochs: 2, ..Default::default() });
        let enc = PlanEncoder::new(w2v, EncoderConfig { max_nodes: 16, structure: false });
        assert_eq!(enc.node_dim(), 8 + onehot::DIM + NODE_STAT_FEATURES);
        let e = enc.encode(&plan());
        assert_eq!(e.node_features[0].len(), enc.node_dim());
    }

    #[test]
    fn children_lists_match_plan() {
        let enc = encoder();
        let e = enc.encode(&plan());
        assert_eq!(e.children[0], Vec::<usize>::new());
        assert_eq!(e.children[1], vec![0]);
        assert_eq!(e.children[3], vec![2]);
    }

    #[test]
    fn log_norm_behaviour() {
        assert_eq!(log_norm(0.0, 12.0), 0.0);
        assert!(log_norm(1e12, 12.0) >= 0.99);
        assert!(log_norm(1e30, 12.0) <= 1.0);
        assert!(log_norm(-5.0, 12.0) >= 0.0);
    }

    #[test]
    fn sample_includes_resources_and_label() {
        let enc = encoder();
        let cluster = ClusterConfig::default();
        let res = ResourceConfig::default_for(&cluster);
        let s = enc.encode_sample(&plan(), &res, &cluster, 12.5);
        assert_eq!(s.resources.len(), ResourceConfig::NUM_FEATURES);
        assert_eq!(s.seconds, 12.5);
    }
}
