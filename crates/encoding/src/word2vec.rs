//! Skip-gram word2vec with negative sampling (Mikolov et al.), trained on
//! the corpus of plan-statement tokens — the paper's node-semantic
//! embedding (Sec. IV-C). Implemented from scratch; no external model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct W2vConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub lr: f32,
    /// Words rarer than this are dropped from the vocabulary.
    pub min_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for W2vConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window: 4,
            negative: 5,
            epochs: 4,
            lr: 0.025,
            min_count: 1,
            seed: 42,
        }
    }
}

/// A trained word-embedding table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Word2Vec {
    vocab: HashMap<String, usize>,
    vectors: Vec<Vec<f32>>,
    dim: usize,
}

impl Word2Vec {
    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The vector of a word, if in vocabulary.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        self.vocab.get(word).map(|&i| self.vectors[i].as_slice())
    }

    /// Mean vector of a token sequence (zero vector when nothing matches)
    /// — the statement-level embedding of a plan node.
    pub fn embed_mean(&self, tokens: &[String]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for t in tokens {
            if let Some(v) = self.vector(t) {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o += x;
                }
                n += 1;
            }
        }
        if n > 0 {
            for o in &mut out {
                *o /= n as f32;
            }
        }
        out
    }

    /// Cosine similarity between two in-vocabulary words.
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        let (va, vb) = (self.vector(a)?, self.vector(b)?);
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return Some(0.0);
        }
        Some(dot / (na * nb))
    }
}

/// Trains skip-gram embeddings on a corpus of sentences.
pub fn train(corpus: &[Vec<String>], cfg: &W2vConfig) -> Word2Vec {
    let mut span = telemetry::span("encode.word2vec");
    span.record("sentences", corpus.len() as u64);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Vocabulary.
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for sentence in corpus {
        for w in sentence {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    let mut words: Vec<(&str, usize)> =
        counts.into_iter().filter(|(_, c)| *c >= cfg.min_count).collect();
    words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let vocab: HashMap<String, usize> = words
        .iter()
        .enumerate()
        .map(|(i, (w, _))| (w.to_string(), i))
        .collect();
    let v = vocab.len();
    if v == 0 {
        return Word2Vec { vocab, vectors: vec![], dim: cfg.dim };
    }

    // Unigram^0.75 negative-sampling table.
    let mut neg_table = Vec::with_capacity(v * 8);
    for (i, (_, c)) in words.iter().enumerate() {
        let reps = ((*c as f64).powf(0.75).ceil() as usize).max(1);
        neg_table.extend(std::iter::repeat_n(i, reps));
    }

    // Input and output matrices.
    let bound = 0.5 / cfg.dim as f32;
    let mut w_in: Vec<Vec<f32>> = (0..v)
        .map(|_| (0..cfg.dim).map(|_| rng.gen_range(-bound..bound)).collect())
        .collect();
    let mut w_out: Vec<Vec<f32>> = vec![vec![0.0; cfg.dim]; v];

    // Pre-index the corpus.
    let indexed: Vec<Vec<usize>> = corpus
        .iter()
        .map(|s| s.iter().filter_map(|w| vocab.get(w).copied()).collect())
        .collect();
    let total_tokens: usize = indexed.iter().map(Vec::len).sum();
    let total_steps = (total_tokens * cfg.epochs).max(1);
    let mut step = 0usize;

    for _epoch in 0..cfg.epochs {
        for sentence in &indexed {
            for (pos, &center) in sentence.iter().enumerate() {
                step += 1;
                let lr = cfg.lr * (1.0 - step as f32 / total_steps as f32).max(0.05);
                let win = rng.gen_range(1..=cfg.window);
                let lo = pos.saturating_sub(win);
                let hi = (pos + win).min(sentence.len() - 1);
                for (ctx_pos, &context) in sentence.iter().enumerate().take(hi + 1).skip(lo) {
                    if ctx_pos == pos {
                        continue;
                    }
                    train_pair(
                        &mut w_in,
                        &mut w_out,
                        center,
                        context,
                        &neg_table,
                        cfg.negative,
                        lr,
                        &mut rng,
                    );
                }
            }
        }
    }

    Word2Vec { vocab, vectors: w_in, dim: cfg.dim }
}

#[allow(clippy::too_many_arguments)]
fn train_pair(
    w_in: &mut [Vec<f32>],
    w_out: &mut [Vec<f32>],
    center: usize,
    context: usize,
    neg_table: &[usize],
    negatives: usize,
    lr: f32,
    rng: &mut StdRng,
) {
    let dim = w_in[center].len();
    let mut grad_center = vec![0.0f32; dim];
    // One positive + k negative updates.
    for k in 0..=negatives {
        let (target, label) = if k == 0 {
            (context, 1.0f32)
        } else {
            (neg_table[rng.gen_range(0..neg_table.len())], 0.0)
        };
        if k > 0 && target == context {
            continue;
        }
        let dot: f32 = w_in[center].iter().zip(&w_out[target]).map(|(a, b)| a * b).sum();
        let pred = 1.0 / (1.0 + (-dot).exp());
        let g = (pred - label) * lr;
        for d in 0..dim {
            grad_center[d] += g * w_out[target][d];
            w_out[target][d] -= g * w_in[center][d];
        }
    }
    for d in 0..dim {
        w_in[center][d] -= grad_center[d];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny corpus where `cat`/`dog` share contexts but `stone` doesn't.
    fn corpus() -> Vec<Vec<String>> {
        let mut c = Vec::new();
        for _ in 0..200 {
            c.push(
                ["the", "cat", "eats", "food", "daily"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
            c.push(
                ["the", "dog", "eats", "food", "daily"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
            c.push(
                ["a", "stone", "sits", "still", "forever"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
        }
        c
    }

    #[test]
    fn similar_contexts_give_similar_vectors() {
        let model = train(&corpus(), &W2vConfig { dim: 16, epochs: 6, ..Default::default() });
        let cat_dog = model.similarity("cat", "dog").unwrap();
        let cat_stone = model.similarity("cat", "stone").unwrap();
        assert!(cat_dog > cat_stone, "cat~dog ({cat_dog}) must beat cat~stone ({cat_stone})");
    }

    #[test]
    fn vocabulary_and_dimensions() {
        let model = train(&corpus(), &W2vConfig::default());
        assert_eq!(model.dim(), 32);
        assert!(model.vocab_size() >= 9);
        assert!(model.vector("cat").is_some());
        assert!(model.vector("unknown-word").is_none());
    }

    #[test]
    fn embed_mean_handles_unknowns() {
        let model = train(&corpus(), &W2vConfig::default());
        let zero = model.embed_mean(&["nope".to_string()]);
        assert!(zero.iter().all(|&x| x == 0.0));
        let some = model.embed_mean(&["cat".to_string(), "nope".to_string()]);
        assert_eq!(some, model.vector("cat").unwrap().to_vec());
    }

    #[test]
    fn training_is_deterministic() {
        let a = train(&corpus(), &W2vConfig::default());
        let b = train(&corpus(), &W2vConfig::default());
        assert_eq!(a.vector("cat"), b.vector("cat"));
    }

    #[test]
    fn empty_corpus_is_safe() {
        let model = train(&[], &W2vConfig::default());
        assert_eq!(model.vocab_size(), 0);
        assert!(model.embed_mean(&["x".to_string()]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn min_count_prunes_rare_words() {
        let corpus = vec![
            vec!["common".to_string(), "common".to_string(), "rare".to_string()],
            vec!["common".to_string()],
        ];
        let model = train(&corpus, &W2vConfig { min_count: 2, ..Default::default() });
        assert!(model.vector("common").is_some());
        assert!(model.vector("rare").is_none());
    }

    #[test]
    fn serde_round_trip() {
        let model = train(&corpus(), &W2vConfig { dim: 8, ..Default::default() });
        let json = serde_json::to_string(&model).unwrap();
        let back: Word2Vec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.vector("cat"), model.vector("cat"));
    }
}
