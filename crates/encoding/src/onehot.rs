//! Explicit one-hot operator encoding (the paper's Table II) — kept both
//! as the baseline the paper argues *against* (sparse, no similarity
//! structure) and as a cheap feature block that tells the model the exact
//! operator type of each node.

/// Operator vocabulary, Table II order extended with the remaining
/// operators our planner emits.
pub const OPERATORS: [&str; 12] = [
    "FileScan",
    "Project",
    "Sort",
    "SortMergeJoin",
    "HashAggregate",
    "ExchangeSinglePartition",
    "ExchangeHashPartition",
    "Filter",
    "BroadcastHashJoin",
    "ShuffledHashJoin",
    "BroadcastExchange",
    "CollectLimit",
];

/// Dimension of the one-hot operator block.
pub const DIM: usize = OPERATORS.len();

/// Index of an operator name, if known.
pub fn operator_index(name: &str) -> Option<usize> {
    OPERATORS.iter().position(|&op| op == name)
}

/// One-hot vector for an operator name (all-zero for unknown names).
pub fn encode_operator(name: &str) -> Vec<f32> {
    let mut v = vec![0.0; DIM];
    if let Some(i) = operator_index(name) {
        v[i] = 1.0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_operator_has_distinct_code() {
        for (i, op) in OPERATORS.iter().enumerate() {
            let v = encode_operator(op);
            assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);
            assert_eq!(v[i], 1.0);
        }
    }

    #[test]
    fn unknown_operator_is_zero() {
        assert!(encode_operator("Mystery").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn covers_all_planner_operators() {
        // The names must match PhysicalOp::name() exactly.
        use sparksim::plan::physical::{AggMode, PhysicalOp};
        use sparksim::plan::spec::AggSpec;
        use sparksim::schema::ColumnRef;
        use sparksim::sql::ast::AggFunc;
        let cr = || ColumnRef::new("t", "c");
        let ops = vec![
            PhysicalOp::FileScan {
                binding: "t".into(),
                table: "t".into(),
                output: vec![],
                pushed_filter: None,
            },
            PhysicalOp::Filter {
                predicate: sparksim::expr::Expr::IsNotNull(Box::new(sparksim::expr::Expr::Column(
                    cr(),
                ))),
            },
            PhysicalOp::Project { columns: vec![] },
            PhysicalOp::ExchangeHash { keys: vec![], partitions: 4 },
            PhysicalOp::ExchangeSingle,
            PhysicalOp::BroadcastExchange,
            PhysicalOp::Sort { keys: vec![] },
            PhysicalOp::SortMergeJoin { left_key: cr(), right_key: cr() },
            PhysicalOp::BroadcastHashJoin { probe_key: cr(), build_key: cr() },
            PhysicalOp::ShuffledHashJoin { left_key: cr(), right_key: cr() },
            PhysicalOp::HashAggregate {
                mode: AggMode::Partial,
                group_by: vec![],
                aggs: vec![AggSpec { func: AggFunc::Count, arg: None }],
            },
            PhysicalOp::Limit { n: 1 },
        ];
        for op in ops {
            assert!(operator_index(op.name()).is_some(), "missing one-hot slot for {}", op.name());
        }
    }
}
