//! # encoding — feature encoders for the RAAL cost model
//!
//! Implements the paper's Sec. IV-C:
//!
//! * [`tokenizer`] — turns plan execution statements into word streams;
//! * [`word2vec`] — skip-gram/negative-sampling embeddings trained on the
//!   plan-statement corpus (the node-semantic embedding);
//! * [`onehot`] — the explicit Table II operator encoding;
//! * [`plan_encoder`] — node-semantic + structure (signed degree) +
//!   statistics encoding of whole plans, resource normalisation (Eq. 1)
//!   and assembled training [`plan_encoder::Sample`]s.

#![warn(missing_docs)]

pub mod onehot;
pub mod plan_encoder;
pub mod tokenizer;
pub mod word2vec;

pub use plan_encoder::{EncodedPlan, EncoderConfig, PlanEncoder, Sample};
pub use word2vec::{train as train_word2vec, W2vConfig, Word2Vec};
