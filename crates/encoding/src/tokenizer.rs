//! Tokenizer for physical-plan execution statements.
//!
//! Splits Spark-`explain`-style statements (as produced by
//! [`sparksim::plan::physical::PhysicalPlan::statement`]) into the word
//! stream word2vec is trained on. Operators, table/column identifiers and
//! punctuation all become tokens; numeric literals are bucketed by order
//! of magnitude so that `< 71692` and `< 83000` share a token (`<num:5>`)
//! while `< 7` (`<num:1>`) stays distinct — the embedding can then encode
//! "how selective" rather than memorising every constant.

/// Tokenizes one execution statement.
pub fn tokenize_statement(statement: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut chars = statement.chars().peekable();
    let mut word = String::new();
    let flush = |word: &mut String, tokens: &mut Vec<String>| {
        if !word.is_empty() {
            tokens.push(normalize_word(word));
            word.clear();
        }
    };
    while let Some(c) = chars.next() {
        match c {
            c if c.is_alphanumeric() || c == '_' || c == '#' => word.push(c),
            '.' => {
                // Keep qualified names split: `t.id` -> `t` `.` `id`;
                // but keep decimals inside numbers: `8.2`.
                let numeric_context = word.chars().all(|w| w.is_ascii_digit())
                    && !word.is_empty()
                    && chars.peek().is_some_and(|n| n.is_ascii_digit());
                if numeric_context {
                    word.push('.');
                } else {
                    flush(&mut word, &mut tokens);
                    tokens.push(".".to_string());
                }
            }
            '<' | '>' | '=' | '!' | '&' | '|' => {
                flush(&mut word, &mut tokens);
                // Coalesce two-character operators.
                let mut op = c.to_string();
                if let Some(&next) = chars.peek() {
                    let pair = format!("{c}{next}");
                    if matches!(pair.as_str(), "<=" | ">=" | "<>" | "!=" | "&&" | "||") {
                        op = pair;
                        chars.next();
                    }
                }
                tokens.push(op);
            }
            '(' | ')' | '[' | ']' | ',' | ':' | '%' => {
                flush(&mut word, &mut tokens);
                tokens.push(c.to_string());
            }
            '\'' => {
                // String literal: collect until the closing quote.
                flush(&mut word, &mut tokens);
                let mut s = String::new();
                for sc in chars.by_ref() {
                    if sc == '\'' {
                        break;
                    }
                    s.push(sc);
                }
                tokens.push(format!("'{s}'"));
            }
            '-' => {
                // Negative literal or hyphenated word; treat as part of word.
                word.push(c);
            }
            c if c.is_whitespace() => flush(&mut word, &mut tokens),
            _ => flush(&mut word, &mut tokens),
        }
    }
    flush(&mut word, &mut tokens);
    tokens
}

/// Buckets numeric words by magnitude; leaves everything else lowercased.
fn normalize_word(word: &str) -> String {
    let trimmed = word.strip_prefix('-').unwrap_or(word);
    if !trimmed.is_empty()
        && trimmed.chars().all(|c| c.is_ascii_digit() || c == '.')
        && trimmed.chars().any(|c| c.is_ascii_digit())
    {
        let magnitude = trimmed.split('.').next().map(str::len).unwrap_or(1).min(12);
        return format!("<num:{magnitude}>");
    }
    word.to_lowercase()
}

/// Tokenizes every statement of a plan into one corpus sentence per node.
pub fn plan_sentences(plan: &sparksim::PhysicalPlan) -> Vec<Vec<String>> {
    (0..plan.len())
        .map(|i| tokenize_statement(&plan.statement(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_filter_statement() {
        let toks = tokenize_statement("Filter ((isnotnull(t.kind_id) && (t.kind_id < 7)))");
        assert!(toks.contains(&"filter".to_string()));
        assert!(toks.contains(&"isnotnull".to_string()));
        assert!(toks.contains(&"&&".to_string()));
        assert!(toks.contains(&"<".to_string()));
        assert!(toks.contains(&"<num:1>".to_string()));
        assert!(toks.contains(&"kind_id".to_string()));
    }

    #[test]
    fn buckets_numbers_by_magnitude() {
        assert_eq!(normalize_word("71692"), "<num:5>");
        assert_eq!(normalize_word("83000"), "<num:5>");
        assert_eq!(normalize_word("7"), "<num:1>");
        assert_eq!(normalize_word("-42"), "<num:2>");
        assert_eq!(normalize_word("8.2"), "<num:1>");
    }

    #[test]
    fn string_literals_are_single_tokens() {
        let toks = tokenize_statement("Filter (t.code = 'us')");
        assert!(toks.contains(&"'us'".to_string()));
    }

    #[test]
    fn decimal_inside_number_stays_joined() {
        let toks = tokenize_statement("Filter (x.r > 8.25)");
        assert!(toks.contains(&"<num:1>".to_string()), "{toks:?}");
        // The token stream must not contain a bare '.' from the decimal.
        let dot_count = toks.iter().filter(|t| t.as_str() == ".").count();
        assert_eq!(dot_count, 1, "only the qualifier dot: {toks:?}");
    }

    #[test]
    fn qualified_names_split_on_dot() {
        let toks = tokenize_statement("SortMergeJoin [t.id], [mc.movie_id], Inner");
        let t = toks.iter().position(|x| x == "t").unwrap();
        assert_eq!(toks[t + 1], ".");
        assert_eq!(toks[t + 2], "id");
        assert!(toks.contains(&"sortmergejoin".to_string()));
        assert!(toks.contains(&"inner".to_string()));
    }

    #[test]
    fn operators_coalesce() {
        let toks = tokenize_statement("a >= 1 && b <= 2");
        assert!(toks.contains(&">=".to_string()));
        assert!(toks.contains(&"<=".to_string()));
        assert!(toks.contains(&"&&".to_string()));
    }
}
