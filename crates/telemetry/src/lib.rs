//! # telemetry — structured spans, metrics and Spark-style event logs
//!
//! The observability substrate of the RAAL workspace. RAAL is trained on
//! traces harvested from Spark's own instrumentation (event logs / the
//! History Server), and this crate gives the reproduction the same kind
//! of signal about itself:
//!
//! * **spans** — a thread-local stack of RAII guards ([`span`]); closing
//!   a span emits one JSONL line (name, thread, duration, nesting) and a
//!   Chrome `trace_event` slice;
//! * **kernel spans** — [`kernel_span`], the cheap variant for µs-scale
//!   kernels: aggregates durations into a histogram instead of emitting
//!   a line per call;
//! * **counters, gauges and histograms** — [`count`] / [`gauge`] /
//!   [`observe`]. Every value lands in the live [`registry`], so
//!   current rates and windowed p50/p95/p99 can be *read back* while
//!   the process runs ([`metrics_snapshot`], Prometheus/JSON export);
//!   [`shutdown`] additionally summarises them as
//!   `counter`/`gauge`/`histogram` JSONL events;
//! * **prediction-quality monitoring** — [`monitor::QualityMonitor`]
//!   tracks rolling MAE / Q-error per workload class over
//!   `(predicted, observed)` pairs and raises `drift.alarm` events via
//!   a Page–Hinkley detector when the error level shifts;
//! * **events** — [`event`], free-form point records; `sparksim` uses
//!   them for Spark-mimicking `job_start`/`stage_completed`/`task_end`
//!   lines (see [`schema`]);
//! * **run manifest** — [`manifest`] stamps the log (and, via
//!   [`manifest_json`], the bench TSVs) with run id, git sha, wall-clock
//!   origin and config fields.
//!
//! ## Enabling
//!
//! Telemetry is off by default and every entry point starts with one
//! relaxed atomic load ([`enabled`]), so instrumented hot paths cost
//! nothing measurable when disabled. Binaries opt in from the
//! environment via [`init_from_env`]:
//!
//! * `RAAL_TELEMETRY=1` — enable, JSONL events to `raal-events.jsonl`;
//!   any other non-`0` value is used as the output path instead;
//! * `RAAL_TRACE_OUT=trace.json` — additionally export a Chrome trace
//!   (open in `chrome://tracing` or <https://ui.perfetto.dev>) on
//!   [`shutdown`];
//! * `RAAL_METRICS_OUT=metrics.prom` — write the final metrics
//!   snapshot in the Prometheus text exposition format on [`shutdown`]
//!   (a `.json` extension selects the JSON snapshot instead);
//! * `RAAL_STACKS_OUT=stacks.folded` — write span self-time as
//!   inferno-compatible collapsed stacks on [`shutdown`].
//!
//! The sink is buffered: call [`flush`] at checkpoints and [`shutdown`]
//! before exit (it also emits the counter/histogram summaries and writes
//! the Chrome trace). All timestamps come from one process-wide
//! monotonic clock ([`clock_us`]/[`clock_ns`]); code that reports
//! wall-clock durations should read the same clock so every number in a
//! run is comparable.

#![deny(missing_docs)]

pub mod hist;
pub mod monitor;
pub mod registry;
pub mod schema;
mod trace;
mod value;

pub use hist::Histogram;
pub use monitor::{DriftAlarm, MonitorConfig, QualityMonitor};
pub use registry::MetricsSnapshot;
pub use value::Value;

use raal_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use raal_sync::sync::Mutex;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Once, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------- clock

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process clock origin. Works whether or not
/// telemetry is enabled — this is *the* clock for wall-time reporting.
#[inline]
pub fn clock_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Nanoseconds since the process clock origin (for µs-scale kernels).
#[inline]
pub fn clock_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ------------------------------------------------------------ global state

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Whether telemetry is currently recording. One relaxed atomic load —
/// the fast path instrumented code checks before doing any work.
#[inline]
pub fn enabled() -> bool {
    // ORDERING: Relaxed is sufficient — this flag only gates best-effort
    // logging, and every reader that acts on `true` then takes the state
    // mutex, whose acquire synchronises with the sink installation done
    // under the same mutex in `init_from_env`/`capture_inner`. No data
    // is published through this load itself.
    ENABLED.load(Ordering::Relaxed)
}

/// Upper bound on buffered Chrome-trace slices; beyond it spans still
/// log to JSONL but are dropped from the trace (counted in
/// `telemetry.trace_dropped`).
const TRACE_CAP: usize = 262_144;

struct State {
    sink: Option<Box<dyn Write + Send>>,
    trace: Vec<trace::TraceSlice>,
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    stacks_path: Option<PathBuf>,
    trace_dropped: u64,
    manifest_emitted: bool,
    run_id: String,
    clock_origin_unix_ms: u64,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
            .saturating_sub(clock_us() / 1000);
        Mutex::new(State {
            sink: None,
            trace: Vec::new(),
            trace_path: None,
            metrics_path: None,
            stacks_path: None,
            trace_dropped: 0,
            manifest_emitted: false,
            run_id: format!("{unix_ms:x}-{:04x}", std::process::id() & 0xFFFF),
            clock_origin_unix_ms: unix_ms,
        })
    })
}

fn lock_state() -> raal_sync::sync::MutexGuard<'static, State> {
    // A panic while holding the lock (only possible inside std::io) must
    // not wedge telemetry for the rest of the process.
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Initialises telemetry from `RAAL_TELEMETRY` / `RAAL_TRACE_OUT`.
/// Idempotent and cheap after the first call; binaries and examples call
/// it at startup.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(val) = std::env::var("RAAL_TELEMETRY") else {
            return;
        };
        if val.is_empty() || val == "0" {
            return;
        }
        let path = if val == "1" || val.eq_ignore_ascii_case("true") {
            PathBuf::from("raal-events.jsonl")
        } else {
            PathBuf::from(val)
        };
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("telemetry: cannot create {}: {e}; telemetry disabled", path.display());
                return;
            }
        };
        let out_path =
            |var: &str| std::env::var(var).ok().filter(|s| !s.is_empty()).map(PathBuf::from);
        let trace_path = out_path("RAAL_TRACE_OUT");
        let metrics_path = out_path("RAAL_METRICS_OUT");
        let stacks_path = out_path("RAAL_STACKS_OUT");
        let mut st = lock_state();
        st.sink = Some(Box::new(std::io::BufWriter::new(file)));
        st.trace_path = trace_path;
        st.metrics_path = metrics_path;
        st.stacks_path = stacks_path;
        drop(st);
        ENABLED.store(true, Ordering::Release);
    });
}

// ---------------------------------------------------------------- threads

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // ORDERING: Relaxed — a unique-id counter needs only atomicity of
    // the increment; no other memory is published via this operation.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

// ------------------------------------------------------------- line builder

/// Incremental JSONL line builder (`{"ts_us":..,"type":"..",...}`).
struct Line(String);

impl Line {
    fn new(ts_us: u64, event_type: &str) -> Self {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"ts_us\":{ts_us},\"type\":");
        value::escape_json_into(event_type, &mut s);
        Line(s)
    }

    fn key(&mut self, key: &str) {
        self.0.push(',');
        value::escape_json_into(key, &mut self.0);
        self.0.push(':');
    }

    fn str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        value::escape_json_into(v, &mut self.0);
        self
    }

    fn uint(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        let _ = write!(self.0, "{v}");
        self
    }

    fn float(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        Value::F64(v).write_json(&mut self.0);
        self
    }

    fn opt_str(mut self, key: &str, v: Option<&str>) -> Self {
        self.key(key);
        match v {
            Some(s) => value::escape_json_into(s, &mut self.0),
            None => self.0.push_str("null"),
        }
        self
    }

    fn fields(mut self, fields: &[(&str, Value)]) -> Self {
        self.key("fields");
        self.0.push('{');
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                self.0.push(',');
            }
            value::escape_json_into(k, &mut self.0);
            self.0.push(':');
            v.write_json(&mut self.0);
        }
        self.0.push('}');
        self
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

fn emit_line(st: &mut State, line: String) {
    if let Some(sink) = st.sink.as_mut() {
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
    }
}

// ----------------------------------------------------------------- spans

/// An RAII span guard from [`span`]. Closing (dropping) it emits a
/// `span` event and a Chrome-trace slice; [`Span::elapsed_seconds`]
/// works whether or not telemetry is enabled, so callers can use one
/// clock for both reporting and logging.
pub struct Span {
    name: &'static str,
    start_us: u64,
    /// Stack depth at entry when recording; `usize::MAX` when inert.
    depth: usize,
    fields: Vec<(&'static str, Value)>,
}

/// Opens a span. When telemetry is disabled the guard is inert (it still
/// tracks elapsed time, which costs one monotonic-clock read).
pub fn span(name: &'static str) -> Span {
    let start_us = clock_us();
    let depth = if enabled() {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len() - 1
        })
    } else {
        usize::MAX
    };
    Span { name, start_us, depth, fields: Vec::new() }
}

impl Span {
    /// Attaches a field, emitted with the span's closing event.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.depth != usize::MAX {
            self.fields.push((key, value.into()));
        }
    }

    /// Seconds since the span opened, from the telemetry clock. Valid
    /// even when telemetry is disabled.
    pub fn elapsed_seconds(&self) -> f64 {
        (clock_us() - self.start_us) as f64 / 1e6
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.depth == usize::MAX {
            return;
        }
        let end_us = clock_us();
        let dur_us = end_us - self.start_us;
        // Truncating to the entry depth (rather than popping once) keeps
        // the stack consistent even if inner guards leaked or panicked.
        // The joined ancestor path doubles as the collapsed-stack key
        // for flamegraph self-time attribution.
        let (parent, stack, parent_stack) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.truncate(self.depth);
            let parent_stack = (!s.is_empty()).then(|| s.join(";"));
            let stack = match &parent_stack {
                Some(p) => format!("{p};{}", self.name),
                None => self.name.to_string(),
            };
            (s.last().copied(), stack, parent_stack)
        });
        let line = Line::new(end_us, "span")
            .str("name", self.name)
            .uint("tid", tid())
            .uint("dur_us", dur_us)
            .uint("depth", self.depth as u64)
            .opt_str("parent", parent)
            .fields(&self.fields)
            .finish();
        // Registry first, sink second — the two locks are never held
        // together (lock-order discipline, see analysis::conc).
        registry::observe_at(&format!("span.{}_us", self.name), end_us, dur_us);
        registry::span_time(&stack, parent_stack.as_deref(), dur_us);
        let mut st = lock_state();
        if st.trace.len() < TRACE_CAP {
            let slice = trace::TraceSlice {
                name: self.name,
                ts_us: self.start_us,
                dur_us,
                tid: tid(),
            };
            st.trace.push(slice);
        } else {
            st.trace_dropped += 1;
        }
        emit_line(&mut st, line);
    }
}

/// A lightweight timing guard from [`kernel_span`]: aggregates into a
/// `<name>_ns` histogram on drop, no per-call event line — cheap enough
/// for µs-scale kernels (matmul, LSTM steps, attention).
pub struct KernelSpan {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

/// Opens a kernel span. When disabled this is a branch and nothing else.
#[inline]
pub fn kernel_span(name: &'static str) -> KernelSpan {
    if !enabled() {
        return KernelSpan { name, start_ns: 0, active: false };
    }
    KernelSpan { name, start_ns: clock_ns(), active: true }
}

impl Drop for KernelSpan {
    #[inline]
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = clock_ns() - self.start_ns;
        registry::observe(&format!("{}_ns", self.name), dur);
    }
}

// ------------------------------------------------- events, counters, hists

/// Emits a free-form point event (`type: "event"`).
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let line = Line::new(clock_us(), "event")
        .str("name", name)
        .uint("tid", tid())
        .fields(fields)
        .finish();
    emit_line(&mut lock_state(), line);
}

/// Adds `delta` to a named counter in the live [`registry`]
/// (queryable via [`metrics_snapshot`], summarised at [`shutdown`]).
pub fn count(name: &str, delta: u64) {
    registry::counter_add(name, delta);
}

/// Sets a named gauge in the live [`registry`] (last write wins;
/// queryable via [`metrics_snapshot`], summarised at [`shutdown`]).
pub fn gauge(name: &str, value: f64) {
    registry::gauge_set(name, value);
}

/// Records a value into a named histogram in the live [`registry`] —
/// both the all-time view and the sliding recent window (queryable via
/// [`metrics_snapshot`], summarised at [`shutdown`]).
pub fn observe(name: &str, value: u64) {
    registry::observe(name, value);
}

/// A consistent point-in-time snapshot of every live metric: counters,
/// gauges, histogram percentiles (all-time and recent window) and span
/// self-time. Empty when telemetry is disabled.
pub fn metrics_snapshot() -> MetricsSnapshot {
    registry::snapshot()
}

// -------------------------------------------------------------- manifest

/// Emits the run manifest (first call) or a `run_manifest_update`
/// (subsequent calls — e.g. the trainer reporting its resolved worker
/// count after the manifest was written). No-op when disabled.
pub fn manifest(extra: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    let line = if !st.manifest_emitted {
        st.manifest_emitted = true;
        let argv: Vec<String> = std::env::args().collect();
        Line::new(clock_us(), "run_manifest")
            .str("run_id", &st.run_id)
            .str("git_sha", &git_sha())
            .uint("clock_origin_unix_ms", st.clock_origin_unix_ms)
            .str("os", std::env::consts::OS)
            .str("arch", std::env::consts::ARCH)
            .str("argv", &argv.join(" "))
            .fields(extra)
            .finish()
    } else {
        Line::new(clock_us(), "run_manifest_update")
            .str("run_id", &st.run_id)
            .fields(extra)
            .finish()
    };
    emit_line(&mut st, line);
}

/// The current run id (stable for the process lifetime).
pub fn run_id() -> String {
    lock_state().run_id.clone()
}

/// Renders the run manifest as a standalone JSON object — used to stamp
/// bench TSVs with a `<name>.manifest.json` sidecar. Works whether or
/// not telemetry is enabled.
pub fn manifest_json(extra: &[(&str, Value)]) -> String {
    let st = lock_state();
    let argv: Vec<String> = std::env::args().collect();
    Line::new(clock_us(), "run_manifest")
        .str("run_id", &st.run_id)
        .str("git_sha", &git_sha())
        .uint("clock_origin_unix_ms", st.clock_origin_unix_ms)
        .str("os", std::env::consts::OS)
        .str("arch", std::env::consts::ARCH)
        .str("argv", &argv.join(" "))
        .fields(extra)
        .finish()
}

/// Best-effort git commit sha: reads `.git/HEAD` (following the ref or
/// packed-refs) from the current directory upward. No subprocess.
fn git_sha() -> String {
    fn from_repo(dir: &Path) -> Option<String> {
        let head = std::fs::read_to_string(dir.join(".git/HEAD")).ok()?;
        let head = head.trim();
        let Some(refname) = head.strip_prefix("ref: ") else {
            return Some(head.to_string()); // detached HEAD
        };
        if let Ok(sha) = std::fs::read_to_string(dir.join(".git").join(refname)) {
            return Some(sha.trim().to_string());
        }
        let packed = std::fs::read_to_string(dir.join(".git/packed-refs")).ok()?;
        packed
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
            .find_map(|l| l.strip_suffix(refname).map(|sha| sha.trim().to_string()))
    }
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        if let Some(sha) = from_repo(&d) {
            return sha;
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    "unknown".to_string()
}

// ------------------------------------------------------- flush / shutdown

/// Flushes the buffered JSONL sink.
pub fn flush() {
    if !enabled() {
        return;
    }
    if let Some(sink) = lock_state().sink.as_mut() {
        let _ = sink.flush();
    }
}

/// Emits counter/gauge/histogram summary events, writes the Chrome
/// trace / Prometheus snapshot / collapsed stacks (if their `RAAL_*_OUT`
/// variables were set) and flushes. Call before process exit; calling
/// again later summarises whatever accumulated since.
pub fn shutdown() {
    if !enabled() {
        return;
    }
    // Drain the registry before taking the state lock — the two locks
    // are never held together (lock-order discipline).
    let snap = registry::drain();
    finalize(&mut lock_state(), snap);
}

fn finalize(st: &mut State, mut snap: registry::MetricsSnapshot) {
    if st.trace_dropped > 0 {
        let dropped = std::mem::take(&mut st.trace_dropped);
        let slot = snap
            .counters
            .entry("telemetry.trace_dropped".to_string())
            .or_insert(0);
        *slot = slot.saturating_add(dropped);
    }
    let ts = clock_us();
    for (name, v) in &snap.counters {
        let line = Line::new(ts, "counter").str("name", name).uint("value", *v).finish();
        emit_line(st, line);
    }
    for (name, v) in &snap.gauges {
        let line = Line::new(ts, "gauge").str("name", name).float("value", *v).finish();
        emit_line(st, line);
    }
    for (name, h) in &snap.hists {
        let line = Line::new(ts, "histogram")
            .str("name", name)
            .uint("count", h.all.count)
            .uint("p50", h.all.p50.unwrap_or(0))
            .uint("p95", h.all.p95.unwrap_or(0))
            .uint("p99", h.all.p99.unwrap_or(0))
            .uint("max", h.all.max)
            .float("mean", h.all.mean)
            .uint("recent_count", h.recent.count)
            .uint("recent_p50", h.recent.p50.unwrap_or(0))
            .uint("recent_p95", h.recent.p95.unwrap_or(0))
            .uint("recent_p99", h.recent.p99.unwrap_or(0))
            .finish();
        emit_line(st, line);
    }
    if let Some(path) = st.trace_path.clone() {
        if let Err(e) = trace::write_chrome_trace(&path, &st.trace, &st.run_id) {
            eprintln!("telemetry: cannot write trace {}: {e}", path.display());
        }
    }
    if let Some(path) = st.metrics_path.clone() {
        let text = if path.extension().is_some_and(|e| e == "json") {
            snap.to_json()
        } else {
            snap.to_prometheus()
        };
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("telemetry: cannot write metrics {}: {e}", path.display());
        }
    }
    if let Some(path) = st.stacks_path.clone() {
        if let Err(e) = std::fs::write(&path, snap.collapsed_stacks()) {
            eprintln!("telemetry: cannot write stacks {}: {e}", path.display());
        }
    }
    st.trace.clear();
    if let Some(sink) = st.sink.as_mut() {
        let _ = sink.flush();
    }
}

// ----------------------------------------------------------------- testing

/// Test support: capture emitted JSONL lines in memory. Captures are
/// serialised on a global lock, so tests using them cannot interleave;
/// intended for this workspace's test suites, not production use.
pub mod testing {
    use super::*;
    use std::sync::Arc;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct VecSink(Arc<Mutex<Vec<u8>>>);

    impl Write for VecSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Runs `f` with telemetry enabled into an in-memory sink and returns
    /// the emitted JSONL lines (including the shutdown summaries).
    pub fn capture<F: FnOnce()>(f: F) -> Vec<String> {
        capture_inner(f, true, None)
    }

    /// Runs `f` with a sink installed but telemetry **disabled**: any
    /// line in the returned vec is a bug in the disabled fast path.
    pub fn capture_disabled<F: FnOnce()>(f: F) -> Vec<String> {
        capture_inner(f, false, None)
    }

    /// Like [`capture`], but also writes a Chrome trace to `trace_path`
    /// at shutdown.
    pub fn capture_with_trace<F: FnOnce()>(trace_path: impl Into<PathBuf>, f: F) -> Vec<String> {
        capture_inner(f, true, Some(trace_path.into()))
    }

    fn capture_inner<F: FnOnce()>(f: F, enable: bool, trace_path: Option<PathBuf>) -> Vec<String> {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let buf = Arc::new(Mutex::new(Vec::new()));
        {
            let mut st = lock_state();
            st.sink = Some(Box::new(VecSink(buf.clone())));
            st.trace.clear();
            st.trace_dropped = 0;
            st.manifest_emitted = false;
            st.trace_path = trace_path;
            st.metrics_path = None;
            st.stacks_path = None;
        }
        registry::reset();
        ENABLED.store(enable, Ordering::Release);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        if enable {
            shutdown();
        }
        ENABLED.store(false, Ordering::Release);
        {
            let mut st = lock_state();
            st.sink = None;
            st.trace_path = None;
        }
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
        let bytes = buf.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&bytes).lines().map(str::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_primitives_are_inert() {
        // Outside any capture, telemetry is disabled by default.
        assert!(!enabled());
        let mut s = span("noop");
        s.record("x", 1u64);
        drop(s);
        count("c", 1);
        observe("h", 10);
        event("e", &[("k", Value::Int(1))]);
        // Nothing to assert beyond "did not panic / did not enable".
        assert!(!enabled());
    }

    #[test]
    fn clock_is_monotonic() {
        let a = clock_ns();
        let b = clock_ns();
        assert!(b >= a);
        assert!(clock_us() <= clock_ns() / 500, "us and ns share an origin");
    }

    #[test]
    fn manifest_json_renders_without_enabling() {
        let j = manifest_json(&[("bin", Value::Str("unit".into()))]);
        assert!(j.contains("\"run_id\""));
        assert!(j.contains("\"git_sha\""));
        assert!(j.contains("\"bin\":\"unit\""));
        assert!(!enabled());
    }
}
