//! Log-bucketed histograms for latency/size metrics.
//!
//! Values below 32 get exact unit buckets; above that, each power-of-two
//! range splits into 16 linear sub-buckets (an HdrHistogram with 4
//! significant bits), so percentile estimates carry at most ~3% relative
//! quantisation error while a histogram stays a flat 8 KB of counters.
//! Values are plain `u64` — callers record nanoseconds, bytes or rows;
//! the histogram is unit-agnostic.

/// Exact buckets for values `0..LINEAR_CUTOFF`.
const LINEAR_CUTOFF: u64 = 32;
/// First exponent handled by the log region (`2^5 == LINEAR_CUTOFF`).
const FIRST_EXP: u32 = 5;
/// Sub-buckets per power-of-two range.
const SUBS: usize = 16;
/// Total bucket count: 32 exact + (exponents 5..=63) x 16 sub-buckets.
const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - FIRST_EXP as usize) * SUBS;

/// A log-bucketed histogram of `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= FIRST_EXP
    let sub = ((v >> (exp - 4)) & 0xF) as usize;
    LINEAR_CUTOFF as usize + (exp - FIRST_EXP) as usize * SUBS + sub
}

/// Midpoint of a bucket's value range — the percentile estimate returned
/// for observations that landed in it.
fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_CUTOFF as usize;
    let exp = FIRST_EXP + (rel / SUBS) as u32;
    let sub = (rel % SUBS) as u64;
    let width = 1u64 << (exp - 4);
    let lo = (1u64 << exp) + sub * width;
    lo + width / 2
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact arithmetic mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), within the bucket
    /// quantisation error (~3% relative above 32, exact below).
    ///
    /// Legacy all-`u64` interface: an empty histogram reports `0`, which
    /// is indistinguishable from an observed zero — prefer
    /// [`Histogram::quantile`], which makes emptiness explicit.
    pub fn percentile(&self, q: f64) -> u64 {
        self.quantile(q).unwrap_or(0)
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`).
    ///
    /// Edge cases are exact rather than bucket artifacts: an empty
    /// histogram returns `None`, and when every observation was the same
    /// value (in particular a single observation) the quantile *is* that
    /// value at every `q`. Otherwise the estimate is the hit bucket's
    /// midpoint, clamped to the observed `[min, max]` range (~3%
    /// relative error above 32, exact below).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if self.min == self.max {
            return Some(self.min);
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_mid(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one, bucket by bucket. Used by
    /// the windowed registry histograms to merge ring slots into one
    /// "recent" view; both sides must come from this module (the bucket
    /// layout is a compile-time constant, so they always do).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_cover_u64() {
        let mut last = 0;
        for &v in &[0u64, 1, 31, 32, 33, 100, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket order broke at {v}");
            assert!(idx < NUM_BUCKETS);
            last = idx;
        }
    }

    #[test]
    fn bucket_mid_is_within_3_percent() {
        for v in [33u64, 100, 999, 12_345, 1 << 30, u64::MAX / 3] {
            let mid = bucket_mid(bucket_index(v));
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            assert!(rel <= 0.032, "value {v} -> mid {mid} (rel {rel})");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.mean(), 15.5);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_quantile_is_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        // 12_345 sits deep in the log region, where a bucket midpoint
        // would otherwise leak through as an artifact.
        let mut h = Histogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(12_345), "q={q}");
            assert_eq!(h.percentile(q), 12_345, "q={q}");
        }
        assert_eq!(h.min(), 12_345);
        assert_eq!(h.max(), 12_345);
    }

    #[test]
    fn constant_stream_quantiles_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(9_999);
        }
        assert_eq!(h.quantile(0.5), Some(9_999));
        assert_eq!(h.quantile(0.99), Some(9_999));
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [1_000u64, 2_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 2_000);
        assert_eq!(a.mean(), (10.0 + 20.0 + 30.0 + 1000.0 + 2000.0) / 5.0);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 5);
    }
}
