//! Chrome `trace_event` export: completed spans become `"ph": "X"`
//! (complete) events in the JSON object format, so a run's span tree
//! loads directly in `chrome://tracing` / Perfetto as a flamegraph.

use crate::value::escape_json_into;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One completed span, buffered for trace export.
#[derive(Debug, Clone)]
pub(crate) struct TraceSlice {
    pub name: &'static str,
    pub ts_us: u64,
    pub dur_us: u64,
    pub tid: u64,
}

/// Writes the buffered slices as a Chrome trace JSON file.
pub(crate) fn write_chrome_trace(
    path: &Path,
    slices: &[TraceSlice],
    run_id: &str,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::with_capacity(64 + slices.len() * 96);
    out.push_str("{\"traceEvents\":[");
    // Process metadata names the trace after the run.
    out.push_str("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":");
    escape_json_into(&format!("raal {run_id}"), &mut out);
    out.push_str("}}");
    for s in slices {
        out.push_str(",{\"ph\":\"X\",\"pid\":1,\"cat\":\"raal\",\"name\":");
        escape_json_into(s.name, &mut out);
        let _ = write!(out, ",\"tid\":{},\"ts\":{},\"dur\":{}}}", s.tid, s.ts_us, s.dur_us);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}
