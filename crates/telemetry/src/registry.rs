//! Live metrics registry: queryable counters, gauges and windowed
//! histograms, with point-in-time snapshots and Prometheus export.
//!
//! The JSONL sink (see the crate docs) is a flight recorder — nothing
//! can be *read back* while the process runs. This module is the
//! control surface on top of the same instrumentation calls: every
//! [`crate::count`] / [`crate::observe`] / [`crate::gauge`] lands in one
//! process-wide [`Registry`], and [`snapshot`] returns a consistent
//! [`MetricsSnapshot`] at any moment — the serving layer reports live
//! p50/p95/p99 from it and the drift monitor flips gauges in it.
//!
//! Design points:
//!
//! * **consistency** — all metrics live behind a single
//!   [`raal_sync::sync::Mutex`], so a snapshot is one lock acquisition
//!   and can never observe a torn multi-metric update. The mutex comes
//!   from the `raal_sync` shim, which makes the "snapshot is never
//!   torn" property machine-checkable (`tests/model_check.rs`).
//! * **recency** — every histogram is recorded twice: into an all-time
//!   [`Histogram`] and into a [`WindowedHistogram`], a ring of
//!   time-sliced buckets whose merge answers "what did the last ~N
//!   seconds look like" — so a latency regression is visible while the
//!   all-time percentiles still remember the good hours.
//! * **flamegraphs** — span close paths accumulate *self time* per call
//!   stack; [`MetricsSnapshot::collapsed_stacks`] renders them in the
//!   inferno/`flamegraph.pl` collapsed format.
//! * **export** — [`MetricsSnapshot::to_prometheus`] writes the
//!   Prometheus text exposition format (counters, gauges, summaries
//!   with `quantile` labels); [`MetricsSnapshot::to_json`] a JSON
//!   object; both are what the `raal-metrics` bin and the
//!   `RAAL_METRICS_OUT` shutdown hook serve.
//!
//! The global entry points ([`counter_add`], [`gauge_set`], [`observe`])
//! honour the crate's disabled fast path: one relaxed
//! atomic load and out. The [`Registry`] *type* is not gated — tests
//! and the model checker instantiate their own.

use crate::hist::Histogram;
use crate::value::escape_json_into;
use raal_sync::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ------------------------------------------------------------- windowing

/// Ring-of-buckets histogram: observations land in the all-time
/// histogram *and* in a time slot of a fixed ring, so the merge of the
/// live slots approximates "the last `slots x slot_us` microseconds".
///
/// Rotation is lazy — recording into (or reading) a slot whose epoch
/// has passed clears it first — so an idle metric costs nothing and the
/// recent view decays to empty once traffic stops.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    all: Histogram,
    ring: Vec<Histogram>,
    /// `time / slot_us` value each ring slot was last written under;
    /// `u64::MAX` marks a never-written slot.
    epochs: Vec<u64>,
    slot_us: u64,
}

/// Default ring geometry: 8 slots of 5 s — a ~40 s sliding window,
/// wide enough to smooth a scrape interval, narrow enough that a
/// regression shows within a minute.
pub const DEFAULT_WINDOW_SLOTS: usize = 8;
/// Default slot width in microseconds (5 s).
pub const DEFAULT_SLOT_US: u64 = 5_000_000;

impl WindowedHistogram {
    /// A windowed histogram with `slots` ring slots of `slot_us` each.
    pub fn new(slots: usize, slot_us: u64) -> Self {
        let slots = slots.max(1);
        Self {
            all: Histogram::new(),
            ring: vec![Histogram::new(); slots],
            epochs: vec![u64::MAX; slots],
            slot_us: slot_us.max(1),
        }
    }

    /// Records one observation made at clock time `now_us`.
    pub fn record_at(&mut self, now_us: u64, v: u64) {
        self.all.record(v);
        let epoch = now_us / self.slot_us;
        let idx = (epoch % self.ring.len() as u64) as usize;
        if self.epochs[idx] != epoch {
            self.ring[idx] = Histogram::new();
            self.epochs[idx] = epoch;
        }
        self.ring[idx].record(v);
    }

    /// The all-time histogram.
    pub fn all_time(&self) -> &Histogram {
        &self.all
    }

    /// Merge of the ring slots still inside the window ending at
    /// `now_us` — the recent view. Slots whose epoch has expired are
    /// skipped (and will be lazily cleared on next write).
    pub fn recent_at(&self, now_us: u64) -> Histogram {
        let epoch = now_us / self.slot_us;
        let oldest = epoch.saturating_sub(self.ring.len() as u64 - 1);
        let mut out = Histogram::new();
        for (slot, &e) in self.ring.iter().zip(self.epochs.iter()) {
            if e != u64::MAX && e >= oldest && e <= epoch {
                out.merge(slot);
            }
        }
        out
    }
}

// ------------------------------------------------------------- snapshots

/// Summary statistics of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStats {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// p50 / p95 / p99 estimates; `None` when the histogram is empty.
    pub p50: Option<u64>,
    /// 95th percentile estimate.
    pub p95: Option<u64>,
    /// 99th percentile estimate.
    pub p99: Option<u64>,
}

impl HistStats {
    /// Summarises a histogram.
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }
}

/// One registry histogram at snapshot time: the all-time view and the
/// recent (windowed) view.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// All observations since startup (or the last drain).
    pub all: HistStats,
    /// Observations inside the sliding window.
    pub recent: HistStats,
}

/// A point-in-time, internally consistent copy of every live metric.
///
/// Taken under one lock acquisition, so multi-metric invariants the
/// writers maintain (e.g. "`a` is incremented before `b`") hold in the
/// snapshot too — the model-check suite proves this under every bounded
/// interleaving.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Telemetry-clock microseconds at which the snapshot was taken.
    pub at_us: u64,
    /// Monotonic counters by registered name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by registered name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries (all-time + recent window) by name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Span self-time in microseconds, keyed by `;`-joined call stack
    /// (inferno collapsed-stack keys). Self time = span duration minus
    /// time spent in instrumented child spans, clamped at zero.
    pub self_time_us: BTreeMap<String, u64>,
}

/// Maps a metric name to the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixing `raal_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(5 + name.len());
    out.push_str("raal_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters as `<name>_total`, gauges as gauges,
    /// histograms as summaries with `quantile` labels plus `_sum` /
    /// `_count`, each in an all-time and a `<name>_recent` windowed
    /// variant. `scripts/check_prometheus.py` validates the output in
    /// CI.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let p = prom_name(name);
            let _ = writeln!(out, "# HELP {p}_total RAAL counter {name}");
            let _ = writeln!(out, "# TYPE {p}_total counter");
            let _ = writeln!(out, "{p}_total {v}");
        }
        for (name, v) in &self.gauges {
            let p = prom_name(name);
            let _ = writeln!(out, "# HELP {p} RAAL gauge {name}");
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", prom_f64(*v));
        }
        for (name, h) in &self.hists {
            let base = prom_name(name);
            for (suffix, stats) in [("", &h.all), ("_recent", &h.recent)] {
                let p = format!("{base}{suffix}");
                let _ = writeln!(out, "# HELP {p} RAAL histogram {name}{suffix}");
                let _ = writeln!(out, "# TYPE {p} summary");
                for (q, est) in [("0.5", stats.p50), ("0.95", stats.p95), ("0.99", stats.p99)] {
                    let _ = writeln!(
                        out,
                        "{p}{{quantile=\"{q}\"}} {}",
                        est.map_or_else(|| "NaN".to_string(), |v| v.to_string())
                    );
                }
                // The log-bucketed histogram keeps an exact mean, so
                // `mean * count` reconstructs the exact sum.
                let _ = writeln!(out, "{p}_sum {}", prom_f64(stats.mean * stats.count as f64));
                let _ = writeln!(out, "{p}_count {}", stats.count);
            }
        }
        out
    }

    /// Renders the snapshot as one JSON object (hand-written, like the
    /// JSONL sink, so the crate stays dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"at_us\":{},\"counters\":{{", self.at_us);
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json_into(name, &mut out);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json_into(name, &mut out);
            out.push(':');
            crate::Value::F64(*v).write_json(&mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json_into(name, &mut out);
            out.push(':');
            let window = |out: &mut String, label: &str, s: &HistStats| {
                escape_json_into(label, out);
                let _ = write!(out, ":{{\"count\":{},\"min\":{},\"max\":{}", s.count, s.min, s.max);
                out.push_str(",\"mean\":");
                crate::Value::F64(s.mean).write_json(out);
                for (k, q) in [("p50", s.p50), ("p95", s.p95), ("p99", s.p99)] {
                    let _ = match q {
                        Some(v) => write!(out, ",\"{k}\":{v}"),
                        None => write!(out, ",\"{k}\":null"),
                    };
                }
                out.push('}');
            };
            out.push('{');
            window(&mut out, "all", &h.all);
            out.push(',');
            window(&mut out, "recent", &h.recent);
            out.push('}');
        }
        out.push_str("},\"self_time_us\":{");
        for (i, (stack, us)) in self.self_time_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_json_into(stack, &mut out);
            let _ = write!(out, ":{us}");
        }
        out.push_str("}}");
        out
    }

    /// Renders span self-time as inferno-compatible collapsed stacks:
    /// one `stack;frames count` line per call stack, counts in
    /// microseconds. Pipe into `inferno-flamegraph` (or
    /// `flamegraph.pl`) for an SVG.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for (stack, us) in &self.self_time_us {
            let _ = writeln!(out, "{stack} {us}");
        }
        out
    }
}

// -------------------------------------------------------------- registry

struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, WindowedHistogram>,
    /// Signed self-time accumulator per collapsed stack: a closing span
    /// adds its duration to its own stack and subtracts it from its
    /// parent's, so each key converges to self time. Transiently
    /// negative while children have closed but the parent has not.
    self_time_us: BTreeMap<String, i64>,
}

/// A live metrics store. The process-wide instance sits behind the
/// crate-level functions ([`counter_add`] & co., gated on
/// [`crate::enabled`]); the type itself is ungated so tests and the
/// model checker can drive private instances.
pub struct Registry {
    inner: Mutex<Inner>,
    slots: usize,
    slot_us: u64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with the default window geometry
    /// ([`DEFAULT_WINDOW_SLOTS`] x [`DEFAULT_SLOT_US`]).
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW_SLOTS, DEFAULT_SLOT_US)
    }

    /// A registry whose histograms use `slots` ring slots of `slot_us`.
    pub fn with_window(slots: usize, slot_us: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                hists: BTreeMap::new(),
                self_time_us: BTreeMap::new(),
            }),
            slots,
            slot_us,
        }
    }

    fn lock(&self) -> raal_sync::sync::MutexGuard<'_, Inner> {
        // A poisoned registry (panic inside pure map code) must not take
        // telemetry down with it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to a counter, creating it at zero.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut g = self.lock();
        match g.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                g.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets a gauge (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut g = self.lock();
        match g.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                g.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records a histogram observation made at clock time `now_us`.
    pub fn observe_at(&self, name: &str, now_us: u64, value: u64) {
        let (slots, slot_us) = (self.slots, self.slot_us);
        let mut g = self.lock();
        match g.hists.get_mut(name) {
            Some(h) => h.record_at(now_us, value),
            None => {
                let mut h = WindowedHistogram::new(slots, slot_us);
                h.record_at(now_us, value);
                g.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Accumulates span self-time: `dur_us` is credited to `stack` and
    /// debited from `parent` (whose own close will credit it back as
    /// part of its full duration).
    pub fn span_time(&self, stack: &str, parent: Option<&str>, dur_us: u64) {
        let mut g = self.lock();
        let dur = dur_us.min(i64::MAX as u64) as i64;
        *g.self_time_us.entry(stack.to_string()).or_insert(0) += dur;
        if let Some(p) = parent {
            *g.self_time_us.entry(p.to_string()).or_insert(0) -= dur;
        }
    }

    /// A consistent point-in-time snapshot, evaluated at `now_us` (which
    /// also bounds the recent windows).
    pub fn snapshot_at(&self, now_us: u64) -> MetricsSnapshot {
        let g = self.lock();
        MetricsSnapshot {
            at_us: now_us,
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            hists: g
                .hists
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistSnapshot {
                            all: HistStats::of(h.all_time()),
                            recent: HistStats::of(&h.recent_at(now_us)),
                        },
                    )
                })
                .collect(),
            self_time_us: g
                .self_time_us
                .iter()
                .filter(|(_, &us)| us > 0)
                .map(|(stack, &us)| (stack.clone(), us as u64))
                .collect(),
        }
    }

    /// Takes a snapshot and clears the registry — the shutdown path,
    /// which summarises whatever accumulated since the previous drain.
    pub fn drain_at(&self, now_us: u64) -> MetricsSnapshot {
        let snap = self.snapshot_at(now_us);
        let mut g = self.lock();
        g.counters.clear();
        g.gauges.clear();
        g.hists.clear();
        g.self_time_us.clear();
        snap
    }
}

// ------------------------------------------------------ global instance

fn global() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Adds `delta` to the process-wide counter `name`. No-op when
/// telemetry is disabled. Usually reached via [`crate::count`].
pub fn counter_add(name: &str, delta: u64) {
    if crate::enabled() {
        global().counter_add(name, delta);
    }
}

/// Sets the process-wide gauge `name`. No-op when telemetry is
/// disabled. Usually reached via [`crate::gauge`].
pub fn gauge_set(name: &str, value: f64) {
    if crate::enabled() {
        global().gauge_set(name, value);
    }
}

/// Records into the process-wide histogram `name` at the current clock.
/// No-op when telemetry is disabled. Usually reached via
/// [`crate::observe`].
pub fn observe(name: &str, value: u64) {
    if crate::enabled() {
        global().observe_at(name, crate::clock_us(), value);
    }
}

/// Like [`observe`] with an explicit clock reading (so span drops reuse
/// the timestamp they already took).
pub(crate) fn observe_at(name: &str, now_us: u64, value: u64) {
    if crate::enabled() {
        global().observe_at(name, now_us, value);
    }
}

/// Span self-time accounting for the global registry (span drop path).
pub(crate) fn span_time(stack: &str, parent: Option<&str>, dur_us: u64) {
    if crate::enabled() {
        global().span_time(stack, parent, dur_us);
    }
}

/// A consistent snapshot of the process-wide registry. Returns an empty
/// snapshot when telemetry is disabled.
pub fn snapshot() -> MetricsSnapshot {
    if crate::enabled() {
        global().snapshot_at(crate::clock_us())
    } else {
        MetricsSnapshot::default()
    }
}

/// Drains the process-wide registry (shutdown path).
pub(crate) fn drain() -> MetricsSnapshot {
    global().drain_at(crate::clock_us())
}

/// Test support: clears the process-wide registry.
pub(crate) fn reset() {
    let _ = global().drain_at(crate::clock_us());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_histogram_rotates_and_expires() {
        // 4 slots of 10us: window covers [now-30us, now].
        let mut w = WindowedHistogram::new(4, 10);
        w.record_at(5, 100); // epoch 0
        w.record_at(15, 200); // epoch 1
        assert_eq!(w.all_time().count(), 2);
        assert_eq!(w.recent_at(15).count(), 2);
        // Move past epoch 0's window: only epoch 1 remains recent.
        assert_eq!(w.recent_at(45).count(), 1);
        assert_eq!(w.recent_at(45).max(), 200);
        // Far future: the window is empty, the all-time view is not.
        assert_eq!(w.recent_at(1_000).count(), 0);
        assert_eq!(w.all_time().count(), 2);
        // Wrapping reuses and clears the slot that held epoch 0.
        w.record_at(41, 300); // epoch 4 -> slot 0, clears the old epoch
        assert_eq!(w.recent_at(41).count(), 2, "epochs 1 and 4 in window");
        assert_eq!(w.all_time().count(), 3);
    }

    #[test]
    fn snapshot_is_consistent_copy() {
        let r = Registry::with_window(4, 10);
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        r.observe_at("h", 7, 100);
        let snap = r.snapshot_at(9);
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2.5);
        assert_eq!(snap.hists["h"].all.count, 1);
        assert_eq!(snap.hists["h"].recent.count, 1);
        assert_eq!(snap.hists["h"].all.p50, Some(100));
        // The snapshot is a copy: later writes don't retro-mutate it.
        r.counter_add("c", 1);
        assert_eq!(snap.counters["c"], 5);
    }

    #[test]
    fn self_time_attribution() {
        let r = Registry::new();
        // outer(10us total) contains inner(4us): self times 6 and 4.
        r.span_time("outer;inner", Some("outer"), 4);
        r.span_time("outer", None, 10);
        let snap = r.snapshot_at(0);
        assert_eq!(snap.self_time_us["outer"], 6);
        assert_eq!(snap.self_time_us["outer;inner"], 4);
        let folded = snap.collapsed_stacks();
        assert!(folded.contains("outer 6\n"));
        assert!(folded.contains("outer;inner 4\n"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::with_window(4, 10);
        r.counter_add("serving.predict", 3);
        r.gauge_set("serving.slo.hit_rate", 0.75);
        r.observe_at("serving.predict_us", 5, 1234);
        let text = r.snapshot_at(6).to_prometheus();
        assert!(text.contains("# TYPE raal_serving_predict_total counter"));
        assert!(text.contains("raal_serving_predict_total 3"));
        assert!(text.contains("# TYPE raal_serving_slo_hit_rate gauge"));
        assert!(text.contains("raal_serving_slo_hit_rate 0.75"));
        assert!(text.contains("# TYPE raal_serving_predict_us summary"));
        assert!(text.contains("raal_serving_predict_us{quantile=\"0.5\"} 1234"));
        assert!(text.contains("raal_serving_predict_us_recent_count 1"));
        assert!(text.contains("raal_serving_predict_us_count 1"));
    }

    #[test]
    fn drain_clears_but_returns_final_state() {
        let r = Registry::new();
        r.counter_add("c", 7);
        let snap = r.drain_at(0);
        assert_eq!(snap.counters["c"], 7);
        let empty = r.snapshot_at(1);
        assert!(empty.counters.is_empty());
    }
}
