//! Online prediction-quality tracking and drift detection.
//!
//! A served cost model goes stale per workload (the Microsoft
//! retrofitting study's core finding), so quality has to be tracked
//! *per workload class*, not as one global gauge. [`QualityMonitor`] is
//! fed `(predicted, observed)` pairs as ground truth arrives and keeps,
//! per class:
//!
//! * a **rolling window** of recent errors — mean absolute error and
//!   Q-error (`max(pred/obs, obs/pred)`, the cost-model literature's
//!   scale-free metric, >= 1 with 1 = perfect);
//! * a **Page–Hinkley drift detector** over the Q-error stream: an
//!   alarm means the error level *shifted upward* — retrain, or at
//!   least stop trusting the model for that class.
//!
//! Page–Hinkley (Page 1954, the CUSUM family): with incremental mean
//! `x̄_t` of the observed statistic `x_t`, accumulate
//! `m_t = Σ_{i<=t} (x_i − x̄_i − δ)` and its running minimum `M_t`;
//! alarm when `m_t − M_t > λ`. δ absorbs tolerated wobble, λ sets the
//! evidence required — both in units of the statistic (Q-error here),
//! so the defaults are interpretable: `δ = 0.05` ignores sub-5% error
//! inflation, `λ = 2.0` demands the equivalent of ~10 samples running
//! 0.2 Q-error above the learned mean.
//!
//! The monitor itself has **no telemetry dependency in its math** — it
//! works (returns alarms, exposes stats) with telemetry disabled, so a
//! retraining loop can poll it directly. When telemetry *is* enabled it
//! additionally publishes per-class gauges to the live registry
//! (`monitor.mae.<class>`, `monitor.qerror.<class>`,
//! `monitor.drift.<class>`) and emits a `drift.alarm` event into the
//! JSONL log the moment a detector fires.

use crate::registry;
use crate::Value;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Tuning for [`QualityMonitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Rolling-window length per class (pairs kept for MAE / Q-error).
    pub window: usize,
    /// Page–Hinkley tolerated magnitude δ: drift smaller than this in
    /// the Q-error mean never alarms.
    pub ph_delta: f64,
    /// Page–Hinkley alarm threshold λ: accumulated positive deviation
    /// (in Q-error units) required to fire.
    pub ph_lambda: f64,
    /// Samples a class must see before its detector may fire (the mean
    /// estimate is meaningless at n = 1).
    pub min_samples: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            window: 64,
            ph_delta: 0.05,
            ph_lambda: 2.0,
            min_samples: 8,
        }
    }
}

/// A drift alarm: the Page–Hinkley statistic for `class` crossed λ.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlarm {
    /// Workload class whose detector fired.
    pub class: String,
    /// Samples the class had seen when it fired.
    pub samples: u64,
    /// Rolling mean absolute error at alarm time.
    pub mae: f64,
    /// Rolling mean Q-error at alarm time.
    pub q_error: f64,
    /// The Page–Hinkley statistic `m_t − M_t` that crossed λ.
    pub ph_statistic: f64,
}

/// Rolling quality stats for one class, from [`QualityMonitor::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Total pairs observed (not capped by the window).
    pub samples: u64,
    /// Mean absolute error over the rolling window.
    pub mae: f64,
    /// Mean Q-error over the rolling window.
    pub q_error_mean: f64,
    /// Largest Q-error in the rolling window.
    pub q_error_max: f64,
    /// Whether the drift detector has fired and not been reset.
    pub drifted: bool,
}

#[derive(Debug, Default)]
struct ClassState {
    /// Recent (|pred − obs|, q-error) pairs, capped at `window`.
    recent: VecDeque<(f64, f64)>,
    samples: u64,
    /// Incremental mean of the Q-error stream (all samples).
    mean: f64,
    /// Page–Hinkley cumulative statistic `m_t`.
    ph_m: f64,
    /// Running minimum `M_t` of `ph_m`.
    ph_min: f64,
    drifted: bool,
}

impl ClassState {
    fn mae(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().map(|(a, _)| a).sum::<f64>() / self.recent.len() as f64
    }

    fn q_mean(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().map(|(_, q)| q).sum::<f64>() / self.recent.len() as f64
    }
}

/// Online per-class prediction-quality tracker with drift detection.
/// See the [module docs](self) for the math and the telemetry surface.
///
/// A retraining loop feeds it ground truth as it arrives and polls the
/// per-class verdicts — no telemetry required:
///
/// ```
/// use telemetry::monitor::{MonitorConfig, QualityMonitor};
///
/// let mut monitor = QualityMonitor::new(MonitorConfig::default());
///
/// // A healthy class: predictions track observations.
/// for i in 0..100u64 {
///     let observed = 10.0 + (i % 7) as f64 / 10.0;
///     assert!(monitor.record("scan", observed * 1.02, observed).is_none());
/// }
/// let stats = monitor.stats("scan").unwrap();
/// assert_eq!(stats.samples, 100);
/// assert!(stats.q_error_mean < 1.1 && !stats.drifted);
///
/// // A stale class: observed times run away from the predictions, and
/// // the Page–Hinkley detector fires exactly once.
/// let mut alarms = 0;
/// for i in 0..60u64 {
///     if let Some(alarm) = monitor.record("join", 10.0, 10.0 + i as f64) {
///         assert_eq!(alarm.class, "join");
///         alarms += 1;
///     }
/// }
/// assert_eq!(alarms, 1);
/// assert!(monitor.is_drifted("join") && !monitor.is_drifted("scan"));
///
/// // After retraining, `reset` re-arms the class.
/// monitor.reset("join");
/// assert!(!monitor.is_drifted("join"));
/// ```
#[derive(Debug, Default)]
pub struct QualityMonitor {
    cfg: MonitorConfig,
    classes: BTreeMap<String, ClassState>,
}

/// Q-error of one prediction: `max(pred/obs, obs/pred)`, with both
/// sides clamped away from zero so a degenerate pair stays finite.
///
/// ```
/// assert_eq!(telemetry::monitor::q_error(10.0, 10.0), 1.0);
/// assert_eq!(telemetry::monitor::q_error(5.0, 10.0), 2.0); // symmetric
/// assert_eq!(telemetry::monitor::q_error(10.0, 5.0), 2.0);
/// assert!(telemetry::monitor::q_error(0.0, 3.0).is_finite());
/// ```
pub fn q_error(predicted: f64, observed: f64) -> f64 {
    let p = predicted.abs().max(1e-9);
    let o = observed.abs().max(1e-9);
    (p / o).max(o / p)
}

impl QualityMonitor {
    /// A monitor with the given tuning.
    pub fn new(cfg: MonitorConfig) -> Self {
        Self { cfg, classes: BTreeMap::new() }
    }

    /// Feeds one `(predicted, observed)` pair for `class`. Returns the
    /// drift alarm if this sample fired the class's detector (each
    /// detector fires once until [`reset`](Self::reset)).
    pub fn record(&mut self, class: &str, predicted: f64, observed: f64) -> Option<DriftAlarm> {
        let q = q_error(predicted, observed);
        let abs_err = (predicted - observed).abs();
        let (window, delta, lambda, min_samples) = (
            self.cfg.window.max(1),
            self.cfg.ph_delta,
            self.cfg.ph_lambda,
            self.cfg.min_samples,
        );
        let st = self.classes.entry(class.to_string()).or_default();
        st.samples += 1;
        st.recent.push_back((abs_err, q));
        while st.recent.len() > window {
            st.recent.pop_front();
        }
        // Page–Hinkley update on the Q-error stream.
        st.mean += (q - st.mean) / st.samples as f64;
        st.ph_m += q - st.mean - delta;
        st.ph_min = st.ph_min.min(st.ph_m);
        let ph_stat = st.ph_m - st.ph_min;
        let fired = !st.drifted && st.samples >= min_samples && ph_stat > lambda;
        if fired {
            st.drifted = true;
        }
        let (mae, q_mean, samples) = (st.mae(), st.q_mean(), st.samples);

        // Best-effort live publication; every call below is a no-op
        // when telemetry is disabled.
        registry::counter_add("monitor.samples", 1);
        registry::gauge_set(&format!("monitor.mae.{class}"), mae);
        registry::gauge_set(&format!("monitor.qerror.{class}"), q_mean);
        if fired {
            registry::gauge_set(&format!("monitor.drift.{class}"), 1.0);
            registry::counter_add("monitor.drift.alarms", 1);
            crate::event(
                "drift.alarm",
                &[
                    ("class", Value::Str(class.to_string())),
                    ("samples", Value::UInt(samples)),
                    ("mae", Value::F64(mae)),
                    ("q_error", Value::F64(q_mean)),
                    ("ph_statistic", Value::F64(ph_stat)),
                ],
            );
            return Some(DriftAlarm {
                class: class.to_string(),
                samples,
                mae,
                q_error: q_mean,
                ph_statistic: ph_stat,
            });
        }
        None
    }

    /// Rolling stats for a class, if it has seen any samples.
    pub fn stats(&self, class: &str) -> Option<ClassStats> {
        let st = self.classes.get(class)?;
        Some(ClassStats {
            samples: st.samples,
            mae: st.mae(),
            q_error_mean: st.q_mean(),
            q_error_max: st.recent.iter().map(|(_, q)| *q).fold(0.0, f64::max),
            drifted: st.drifted,
        })
    }

    /// Whether a class's detector has fired (and not been reset).
    pub fn is_drifted(&self, class: &str) -> bool {
        self.classes.get(class).is_some_and(|s| s.drifted)
    }

    /// The classes seen so far, in sorted order.
    pub fn classes(&self) -> Vec<&str> {
        self.classes.keys().map(String::as_str).collect()
    }

    /// Re-arms a class after retraining: clears its detector state and
    /// rolling window (the error distribution is expected to change)
    /// and flips `monitor.drift.<class>` back to 0.
    pub fn reset(&mut self, class: &str) {
        if let Some(st) = self.classes.get_mut(class) {
            *st = ClassState::default();
            registry::gauge_set(&format!("monitor.drift.{class}"), 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-1, 1] (no rand dependency).
    fn noise(seed: u64, i: u64) -> f64 {
        let mut x = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        (x % 2_000_000) as f64 / 1_000_000.0 - 1.0
    }

    #[test]
    fn q_error_is_scale_free_and_bounded_below() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(20.0, 10.0), 2.0);
        assert_eq!(q_error(10.0, 20.0), 2.0);
        assert!(q_error(0.0, 5.0).is_finite());
    }

    #[test]
    fn stationary_noise_never_alarms() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        for i in 0..2_000u64 {
            // Predictions within ±10% of the observation: a healthy,
            // noisy, *stationary* model.
            let obs = 10.0 + noise(7, i);
            let pred = obs * (1.0 + 0.1 * noise(11, i));
            assert!(m.record("scan", pred, obs).is_none(), "false alarm at sample {i}");
        }
        let stats = m.stats("scan").unwrap();
        assert!(!stats.drifted);
        assert!(stats.q_error_mean < 1.2);
    }

    #[test]
    fn upward_error_shift_fires_once() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        for i in 0..200u64 {
            let obs = 10.0 + noise(3, i);
            let pred = obs * (1.0 + 0.05 * noise(5, i));
            assert!(m.record("join", pred, obs).is_none());
        }
        // Workload shift: the observed times double, predictions don't.
        let mut alarms = 0;
        let mut fired_at = None;
        for i in 0..100u64 {
            let obs = 20.0 + 2.0 * noise(3, i);
            let pred = 10.0 * (1.0 + 0.05 * noise(5, i));
            if let Some(alarm) = m.record("join", pred, obs) {
                alarms += 1;
                fired_at = Some(i);
                assert_eq!(alarm.class, "join");
                assert!(alarm.q_error > 1.0, "window already worse than perfect");
                assert!(alarm.ph_statistic > 2.0);
            }
        }
        assert_eq!(alarms, 1, "detector fires exactly once until reset");
        assert!(fired_at.unwrap() < 50, "should fire within ~50 shifted samples");
        assert!(m.is_drifted("join"));
        // By the end of the shifted phase the rolling window itself has
        // visibly degraded, not just the detector statistic.
        let stats = m.stats("join").unwrap();
        assert!(stats.q_error_max > 1.8, "window max q-error: {}", stats.q_error_max);
        assert!(stats.q_error_mean > 1.5, "window mean q-error: {}", stats.q_error_mean);
    }

    #[test]
    fn classes_are_isolated() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        for i in 0..100u64 {
            let obs = 10.0 + noise(3, i);
            m.record("healthy", obs * 1.02, obs);
            m.record("sick", obs * (2.0 + (i as f64 / 25.0)), obs);
        }
        assert!(m.is_drifted("sick"));
        assert!(!m.is_drifted("healthy"));
        assert_eq!(m.classes(), vec!["healthy", "sick"]);
    }

    #[test]
    fn reset_rearms_the_detector() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        for i in 0..60u64 {
            m.record("c", 10.0, 10.0 + i as f64); // runaway error
        }
        assert!(m.is_drifted("c"));
        m.reset("c");
        assert!(!m.is_drifted("c"));
        assert_eq!(m.stats("c").unwrap().samples, 0);
        // It can fire again on a fresh shift.
        let mut fired = false;
        for i in 0..120u64 {
            fired |= m.record("c", 10.0, 10.0 + 2.0 * i as f64).is_some();
        }
        assert!(fired, "reset detector fires on a new shift");
    }

    #[test]
    fn warmup_suppresses_early_alarms() {
        let cfg = MonitorConfig { min_samples: 10, ..MonitorConfig::default() };
        let mut m = QualityMonitor::new(cfg);
        for i in 0..9u64 {
            // Violent errors, but under the warmup count.
            assert!(m.record("w", 1.0, 100.0 + i as f64).is_none());
        }
    }
}
