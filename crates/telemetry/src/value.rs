//! JSON scalar values for telemetry fields, with hand-rolled escaping so
//! the crate stays dependency-free (the JSONL sink must not pull the
//! vendored serde stack into every crate that bumps a counter).

use std::fmt::Write as _;

/// A telemetry field value — the JSON scalar subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values serialise as `null` (like serde_json).
    F64(f64),
    /// String, escaped on write.
    Str(String),
}

impl Value {
    /// Appends the JSON rendering of this value to `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_json_into(s, out),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Appends `s` as a quoted, escaped JSON string to `out`.
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(v: Value) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(render(Value::Bool(true)), "true");
        assert_eq!(render(Value::Int(-3)), "-3");
        assert_eq!(render(Value::UInt(u64::MAX)), u64::MAX.to_string());
        assert_eq!(render(Value::F64(1.5)), "1.5");
        assert_eq!(render(Value::F64(f64::NAN)), "null");
        assert_eq!(render(Value::Str("a\"b\\c\nd".into())), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut s = String::new();
        escape_json_into("\u{1}x\u{7f}", &mut s);
        assert_eq!(s, "\"\\u0001x\u{7f}\"");
    }
}
