//! The JSONL event-log schema, mirrored on Spark's event logs.
//!
//! Every line of a RAAL event log is one JSON object with at least
//! `ts_us` (microseconds since the process clock origin) and `type`.
//! The first line of a well-formed log is a `run_manifest`, which binds
//! the relative timestamps to wall-clock time (`clock_origin_unix_ms`)
//! and identifies the run (id, git sha, command line, config fields) —
//! the same role `SparkListenerApplicationStart` plus the environment
//! update play in a Spark History Server log.
//!
//! This module is the single source of truth for validators (the
//! `validate_telemetry` bench binary and the telemetry tests both check
//! against these tables); it contains no parser so the crate stays
//! dependency-free.

/// Keys every event line must carry.
pub const COMMON_REQUIRED: &[&str] = &["ts_us", "type"];

/// Required keys per event `type`.
///
/// * `run_manifest` — run identity: `run_id`, `git_sha`,
///   `clock_origin_unix_ms`, plus free-form `fields` (config, resolved
///   worker threads, resource vector, ...).
/// * `run_manifest_update` — late manifest additions (e.g. the trainer's
///   resolved thread count) keyed back to the same `run_id`.
/// * `span` — a closed RAII span: `name`, emitting thread `tid`,
///   `dur_us`, nesting `depth` (and `parent`, `null` at depth 0).
/// * `event` — a point event; sparksim's Spark-style job/stage/task
///   records use this type with names from [`SPARK_EVENT_NAMES`].
/// * `counter` / `gauge` / `histogram` — end-of-run metric summaries
///   emitted by `telemetry::shutdown()` from the live registry
///   (histogram lines also carry the `recent_*` windowed view).
pub const REQUIRED_BY_TYPE: &[(&str, &[&str])] = &[
    ("run_manifest", &["run_id", "git_sha", "clock_origin_unix_ms", "fields"]),
    ("run_manifest_update", &["run_id", "fields"]),
    ("span", &["name", "tid", "dur_us", "depth"]),
    ("event", &["name", "fields"]),
    ("counter", &["name", "value"]),
    ("gauge", &["name", "value"]),
    ("histogram", &["name", "count", "p50", "p95", "p99", "max", "mean"]),
];

/// Event names sparksim emits (`type == "event"`), mirroring the Spark
/// listener events RAAL's training features are harvested from:
/// `job_start`/`job_end` ≈ `SparkListenerJobStart`/`JobEnd`,
/// `stage_completed` ≈ `SparkListenerStageCompleted` (rows, spill and
/// shuffle bytes live in its `fields`, like a stage's task-metrics
/// rollup), `task_end` ≈ `SparkListenerTaskEnd`. Fault injection adds
/// the recovery events: `executor_failed` ≈ `SparkListenerExecutorRemoved`,
/// `task_retry` (a failed `task_end` followed by a re-queued attempt),
/// `speculative_launch` ≈ the driver cloning a slow task under
/// `spark.speculation`, and `stage_reattempt` ≈ a stage resubmission
/// after a `FetchFailedException`.
pub const SPARK_EVENT_NAMES: &[&str] = &[
    "job_start",
    "stage_completed",
    "task_end",
    "job_end",
    "executor_failed",
    "task_retry",
    "speculative_launch",
    "stage_reattempt",
];

/// The closed vocabulary of span names (both `telemetry::span` and
/// `telemetry::kernel_span`). `raal-lint` rejects any span opened under
/// a name missing from this table, so event-log consumers can key on
/// span names without chasing ad-hoc strings through the codebase.
///
/// Phase spans cover one logical stage of a run; kernel spans (the
/// `nn.*` / `infer.*` names) wrap individual numeric kernels and are
/// sampled rather than always recorded.
pub const SPAN_NAMES: &[&str] = &[
    // Phase spans.
    "train.run",
    "sparksim.execute_plan",
    "sparksim.observe",
    "sparksim.simulate",
    "serving.predict",
    "serving.shard.dispatch",
    "workload.generate",
    "encode.word2vec",
    "baselines.train_tlstm",
    // Kernel spans: nn primitives.
    "nn.matmul",
    "nn.sigmoid",
    "nn.tanh",
    "nn.lstm_seq",
    "nn.conv1d_seq",
    // Kernel spans: inference-engine stages.
    "infer.plan_layer",
    "infer.node_attention",
    "infer.resource_keys",
    "infer.head",
    // Kernel spans: quantized tier.
    "infer.quant.matmul",
];

/// Registered counter names (`telemetry::count`). The `serving.*`
/// family tracks degraded-mode serving: one `serving.predict` per call,
/// split into `serving.predict.model` (deep model answered in time) and
/// the `serving.fallback.*` reasons (analytical-baseline answers).
pub const COUNTER_NAMES: &[&str] = &[
    "infer.predict.single",
    "infer.plan_context.build",
    "infer.predict.with_context",
    "infer.predict.packed",
    "infer.quant.build",
    "infer.quant.predict",
    "infer.arena.alloc",
    "serving.predict",
    "serving.predict.model",
    "serving.fallback.checkpoint",
    "serving.fallback.deadline",
    "serving.fallback.admission",
    "serving.fallback.busy",
    "serving.fallback.worker_lost",
    "serving.fallback.tenant_quota",
    "serving.shard.batches",
    "sparksim.jobs.completed",
    "monitor.samples",
    "monitor.drift.alarms",
];

/// Registered histogram names (`telemetry::observe`). `serving.predict_us`
/// is the serving layer's end-to-end latency (deadline hit-rate's raw
/// material); the windowed recent view of it is what an SLO dashboard
/// scrapes.
pub const HISTOGRAM_NAMES: &[&str] =
    &["train.batch_ns", "infer.predict_ns", "serving.predict_us", "serving.batch_size"];

/// Registered gauge names (`telemetry::gauge`): last-write-wins live
/// values. The `serving.slo.*` family is the serving layer's SLO
/// tracker — deadline hit-rate, overall fallback rate, and per-reason
/// error-budget burn (fraction of the configured error budget consumed;
/// > 1 means the budget is blown).
pub const GAUGE_NAMES: &[&str] = &[
    "train.loss",
    "serving.slo.hit_rate",
    "serving.slo.fallback_rate",
    "serving.slo.burn.checkpoint",
    "serving.slo.burn.admission",
    "serving.slo.burn.deadline",
    "serving.slo.burn.busy",
    "serving.slo.burn.worker_lost",
    "serving.slo.burn.tenant_quota",
];

/// Registered gauge *families*: per-workload-class gauges published by
/// `telemetry::monitor` are `<prefix><class>`, where `class` is chosen
/// by the caller at runtime. A gauge name is valid if it is in
/// [`GAUGE_NAMES`] or extends one of these prefixes (see
/// [`gauge_is_registered`]).
pub const GAUGE_PREFIXES: &[&str] = &["monitor.mae.", "monitor.qerror.", "monitor.drift."];

/// Registered point-event names (`telemetry::event`): the trainer's
/// per-epoch record, the drift monitor's alarm, plus the Spark-style
/// listener events from [`SPARK_EVENT_NAMES`] (including the
/// fault/recovery events).
pub const EVENT_NAMES: &[&str] = &[
    "train.epoch",
    "drift.alarm",
    "job_start",
    "stage_completed",
    "task_end",
    "job_end",
    "executor_failed",
    "task_retry",
    "speculative_launch",
    "stage_reattempt",
];

/// Registered counter *families*: the sharded serving layer publishes
/// per-tenant traffic counters as `<prefix><tenant>`, where the tenant
/// id is sanitized to `[a-z0-9_]` at registration time. A counter name
/// is valid if it is in [`COUNTER_NAMES`] or extends one of these
/// prefixes (see [`counter_is_registered`]).
pub const COUNTER_PREFIXES: &[&str] = &["serving.tenant.predict.", "serving.tenant.shed."];

/// Whether a gauge name is registered: either an exact [`GAUGE_NAMES`]
/// entry or a per-class instantiation of a [`GAUGE_PREFIXES`] family
/// (the class part must be non-empty).
pub fn gauge_is_registered(name: &str) -> bool {
    GAUGE_NAMES.contains(&name)
        || GAUGE_PREFIXES
            .iter()
            .any(|p| name.len() > p.len() && name.starts_with(p))
}

/// Whether a counter name is registered: either an exact
/// [`COUNTER_NAMES`] entry or a per-tenant instantiation of a
/// [`COUNTER_PREFIXES`] family (the tenant part must be non-empty).
pub fn counter_is_registered(name: &str) -> bool {
    COUNTER_NAMES.contains(&name)
        || COUNTER_PREFIXES
            .iter()
            .any(|p| name.len() > p.len() && name.starts_with(p))
}

/// Returns the required field list for an event type, if it is known.
pub fn required_fields(event_type: &str) -> Option<&'static [&'static str]> {
    REQUIRED_BY_TYPE
        .iter()
        .find(|(t, _)| *t == event_type)
        .map(|(_, fields)| *fields)
}
