//! Integration tests for the live metrics registry: snapshots while
//! the process runs, gauge/histogram summary lines at shutdown, the
//! Prometheus / JSON / collapsed-stack exports, and the disabled fast
//! path staying a true no-op.

use serde::Value;
use telemetry::testing::{capture, capture_disabled};

fn parse(lines: &[String]) -> Vec<Value> {
    lines
        .iter()
        .map(|l| serde_json::from_str::<Value>(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect()
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    match v.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("expected string {key}, got {other:?}"),
    }
}

#[test]
fn live_snapshot_is_readable_mid_run() {
    capture(|| {
        telemetry::count("serving.predict", 5);
        telemetry::gauge("serving.slo.hit_rate", 0.8);
        telemetry::observe("serving.predict_us", 1_000);
        telemetry::observe("serving.predict_us", 3_000);
        // The whole point of the registry: read back *before* shutdown.
        let snap = telemetry::metrics_snapshot();
        assert_eq!(snap.counters["serving.predict"], 5);
        assert_eq!(snap.gauges["serving.slo.hit_rate"], 0.8);
        let h = &snap.hists["serving.predict_us"];
        assert_eq!(h.all.count, 2);
        assert_eq!(h.recent.count, 2, "fresh observations are in the window");
        assert!(h.all.p50.is_some() && h.all.p99.is_some());
    });
}

#[test]
fn shutdown_emits_gauge_and_windowed_histogram_summaries() {
    let lines = capture(|| {
        telemetry::count("c", 1);
        telemetry::gauge("train.loss", 0.25);
        telemetry::observe("train.batch_ns", 500);
    });
    let events = parse(&lines);
    let gauge = events
        .iter()
        .find(|e| get_str(e, "type") == "gauge")
        .expect("gauge summary line");
    assert_eq!(get_str(gauge, "name"), "train.loss");
    assert_eq!(gauge.get("value"), Some(&Value::Float(0.25)));
    let hist = events
        .iter()
        .find(|e| get_str(e, "type") == "histogram" && get_str(e, "name") == "train.batch_ns")
        .expect("histogram summary line");
    for key in ["count", "p50", "p95", "p99", "max", "mean", "recent_count", "recent_p95"] {
        assert!(hist.get(key).is_some(), "missing {key}");
    }
}

#[test]
fn span_self_time_builds_collapsed_stacks() {
    capture(|| {
        // Spins until the µs clock advances so neither span rounds to a
        // zero-duration (zero self-time entries are dropped).
        let spin = |us: u64| {
            let t0 = telemetry::clock_us();
            while telemetry::clock_us() - t0 < us {
                std::hint::spin_loop();
            }
        };
        {
            let _outer = telemetry::span("train.run");
            spin(200);
            {
                let _inner = telemetry::span("sparksim.simulate");
                spin(200);
            }
        }
        let snap = telemetry::metrics_snapshot();
        assert!(
            snap.self_time_us.contains_key("train.run;sparksim.simulate"),
            "nested stack key, got {:?}",
            snap.self_time_us.keys().collect::<Vec<_>>()
        );
        let folded = snap.collapsed_stacks();
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
            assert!(!stack.is_empty());
            count.parse::<u64>().expect("count is an integer");
        }
        // The parent's self-time excludes the child: both keys exist
        // (outer did at least the span bookkeeping itself), and the
        // child's full duration was debited from the parent.
        assert!(folded.contains("train.run;sparksim.simulate "));
    });
}

#[test]
fn prometheus_and_json_exports_render_from_capture() {
    capture(|| {
        telemetry::count("infer.predict.single", 3);
        telemetry::gauge("serving.slo.fallback_rate", 0.1);
        telemetry::observe("infer.predict_ns", 42_000);
        let snap = telemetry::metrics_snapshot();

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE raal_infer_predict_single_total counter"));
        assert!(prom.contains("raal_infer_predict_single_total 3"));
        assert!(prom.contains("# TYPE raal_serving_slo_fallback_rate gauge"));
        assert!(prom.contains("# TYPE raal_infer_predict_ns summary"));
        assert!(prom.contains("raal_infer_predict_ns{quantile=\"0.95\"}"));
        assert!(prom.contains("raal_infer_predict_ns_recent_count 1"));

        let json: Value = serde_json::from_str(&snap.to_json()).expect("snapshot JSON parses");
        let counter = json.get("counters").and_then(|c| c.get("infer.predict.single"));
        assert!(
            matches!(counter, Some(Value::Int(3)) | Some(Value::UInt(3))),
            "counter in JSON snapshot: {counter:?}"
        );
        let hist = json
            .get("histograms")
            .and_then(|h| h.get("infer.predict_ns"))
            .expect("histogram in JSON snapshot");
        assert!(hist.get("all").is_some() && hist.get("recent").is_some());
    });
}

#[test]
fn disabled_registry_stays_empty_and_emits_nothing() {
    let lines = capture_disabled(|| {
        telemetry::count("c", 1);
        telemetry::gauge("g", 1.0);
        telemetry::observe("h", 10);
        let snap = telemetry::metrics_snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.self_time_us.is_empty());
    });
    assert!(lines.is_empty(), "disabled run emitted: {lines:?}");
}

#[test]
fn monitor_drift_alarm_reaches_log_and_registry() {
    let mut alarm_class = None;
    let lines = capture(|| {
        let mut m = telemetry::QualityMonitor::new(telemetry::MonitorConfig::default());
        // Healthy phase, then a hard upward error shift.
        for i in 0..50u64 {
            m.record("scan_join", 10.0, 10.0 + (i % 3) as f64 * 0.01);
        }
        for _ in 0..50u64 {
            if let Some(alarm) = m.record("scan_join", 10.0, 40.0) {
                alarm_class = Some(alarm.class.clone());
            }
        }
        let snap = telemetry::metrics_snapshot();
        assert_eq!(snap.gauges["monitor.drift.scan_join"], 1.0, "gauge flipped");
        assert!(snap.gauges["monitor.qerror.scan_join"] > 1.0);
        assert!(snap.counters["monitor.drift.alarms"] >= 1);
        // Reset flips the gauge back.
        m.reset("scan_join");
        let snap = telemetry::metrics_snapshot();
        assert_eq!(snap.gauges["monitor.drift.scan_join"], 0.0);
    });
    assert_eq!(alarm_class.as_deref(), Some("scan_join"));
    let events = parse(&lines);
    let alarm = events
        .iter()
        .find(|e| get_str(e, "type") == "event" && get_str(e, "name") == "drift.alarm")
        .expect("drift.alarm event in the log");
    let fields = alarm.get("fields").expect("fields");
    assert_eq!(get_str(fields, "class"), "scan_join");
    assert!(fields.get("q_error").is_some() && fields.get("ph_statistic").is_some());
}
