//! Property test: with telemetry disabled, no sequence of instrumentation
//! calls emits a single byte — the disabled path must be a true no-op as
//! far as the sink is concerned (hot kernels rely on this).

use proptest::prelude::*;
use telemetry::testing::capture_disabled;

/// One instrumentation call, chosen by the property inputs.
fn run_op(op: u8, payload: u64) {
    match op % 8 {
        0 => {
            let mut s = telemetry::span("prop.span");
            s.record("v", payload);
        }
        1 => {
            let _k = telemetry::kernel_span("prop.kernel");
        }
        2 => telemetry::count("prop.counter", payload),
        3 => telemetry::observe("prop.hist", payload),
        4 => telemetry::event("prop.event", &[("v", telemetry::Value::UInt(payload))]),
        5 => telemetry::gauge("prop.gauge", payload as f64),
        6 => {
            let snap = telemetry::metrics_snapshot();
            assert!(snap.counters.is_empty(), "disabled registry holds state");
        }
        _ => telemetry::manifest(&[("v", telemetry::Value::UInt(payload))]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn disabled_telemetry_emits_nothing(
        ops in proptest::prop::collection::vec(0u8..8, 0..40),
        payload in 0u64..1_000_000,
    ) {
        let lines = capture_disabled(|| {
            for (i, &op) in ops.iter().enumerate() {
                run_op(op, payload.wrapping_add(i as u64));
            }
            telemetry::flush();
            telemetry::shutdown();
        });
        prop_assert!(lines.is_empty(), "disabled run emitted: {lines:?}");
    }
}
