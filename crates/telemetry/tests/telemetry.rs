//! Telemetry-core integration tests: span nesting and drop order (also
//! under panics), JSONL round-tripping through a real JSON parser,
//! histogram percentiles on known distributions, manifest semantics and
//! the Chrome trace export.

use serde::Value;
use telemetry::testing::{capture, capture_with_trace};
use telemetry::{schema, Histogram};

/// Parses every captured line as JSON, panicking with the offending line.
fn parse(lines: &[String]) -> Vec<Value> {
    lines
        .iter()
        .map(|l| serde_json::from_str::<Value>(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect()
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    match v.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("expected string {key}, got {other:?}"),
    }
}

fn get_u64(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) if *i >= 0 => *i as u64,
        other => panic!("expected uint {key}, got {other:?}"),
    }
}

fn events_of<'a>(events: &'a [Value], ty: &str) -> Vec<&'a Value> {
    events.iter().filter(|e| get_str(e, "type") == ty).collect()
}

#[test]
fn spans_nest_and_close_inner_first() {
    let lines = capture(|| {
        let mut outer = telemetry::span("outer");
        outer.record("k", 7u64);
        {
            let _inner = telemetry::span("inner");
        }
        {
            let _second = telemetry::span("second");
        }
    });
    let events = parse(&lines);
    let spans = events_of(&events, "span");
    assert_eq!(spans.len(), 3);
    // Spans are emitted at close: inner and second before outer.
    assert_eq!(get_str(spans[0], "name"), "inner");
    assert_eq!(get_u64(spans[0], "depth"), 1);
    assert_eq!(get_str(spans[0], "parent"), "outer");
    assert_eq!(get_str(spans[1], "name"), "second");
    assert_eq!(get_u64(spans[1], "depth"), 1);
    assert_eq!(get_str(spans[2], "name"), "outer");
    assert_eq!(get_u64(spans[2], "depth"), 0);
    assert_eq!(spans[2].get("parent"), Some(&Value::Null));
    // The recorded field survives into the outer span's close event.
    let fields = spans[2].get("fields").expect("fields object");
    assert_eq!(get_u64(fields, "k"), 7);
}

#[test]
fn span_stack_unwinds_correctly_under_panics() {
    let lines = capture(|| {
        let _outer = telemetry::span("outer");
        let result = std::panic::catch_unwind(|| {
            let _a = telemetry::span("a");
            let _b = telemetry::span("b");
            panic!("boom");
        });
        assert!(result.is_err());
        // After the unwind, new spans must see a consistent stack: this
        // span is a direct child of `outer` again.
        let _after = telemetry::span("after");
    });
    let events = parse(&lines);
    let spans = events_of(&events, "span");
    let names: Vec<&str> = spans.iter().map(|s| get_str(s, "name")).collect();
    // Unwinding drops b then a (LIFO), then `after` opens and closes.
    assert_eq!(names, ["b", "a", "after", "outer"]);
    let after = spans[2];
    assert_eq!(get_u64(after, "depth"), 1, "stack must recover after a panic");
    assert_eq!(get_str(after, "parent"), "outer");
}

#[test]
fn every_line_satisfies_the_schema() {
    let lines = capture(|| {
        telemetry::manifest(&[("cfg", telemetry::Value::Str("unit".into()))]);
        telemetry::manifest(&[("late", telemetry::Value::Int(1))]);
        let _s = telemetry::span("work");
        telemetry::event("job_start", &[("job_id", telemetry::Value::UInt(1))]);
        telemetry::count("things", 3);
        telemetry::gauge("level", 0.5);
        telemetry::observe("sizes", 100);
        let _k = telemetry::kernel_span("kern");
    });
    let events = parse(&lines);
    assert!(!events.is_empty());
    for (event, line) in events.iter().zip(&lines) {
        for key in schema::COMMON_REQUIRED {
            assert!(event.get(key).is_some(), "missing {key} in {line}");
        }
        let ty = get_str(event, "type");
        let required = schema::required_fields(ty).unwrap_or_else(|| panic!("unknown type {ty}"));
        for key in required {
            assert!(event.get(key).is_some(), "missing {key} in {line}");
        }
    }
    // The capture exercised every schema type.
    for (ty, _) in schema::REQUIRED_BY_TYPE {
        assert!(!events_of(&events, ty).is_empty(), "no {ty} event emitted");
    }
}

#[test]
fn json_round_trips_awkward_strings() {
    let gnarly = "quote\" back\\slash \nnewline \ttab \u{1} unicode✓";
    let lines = capture(|| {
        telemetry::event("gnarly", &[("s", telemetry::Value::Str(gnarly.into()))]);
    });
    let events = parse(&lines);
    let ev = events_of(&events, "event")[0];
    let fields = ev.get("fields").unwrap();
    assert_eq!(fields.get("s"), Some(&Value::Str(gnarly.to_string())));
}

#[test]
fn counters_and_histograms_summarise_at_shutdown() {
    let lines = capture(|| {
        for i in 0..10u64 {
            telemetry::count("loop.iters", 1);
            telemetry::observe("loop.values", i * 100);
        }
    });
    let events = parse(&lines);
    let counters = events_of(&events, "counter");
    let c = counters
        .iter()
        .find(|c| get_str(c, "name") == "loop.iters")
        .expect("counter summary");
    assert_eq!(get_u64(c, "value"), 10);
    let hists = events_of(&events, "histogram");
    let h = hists
        .iter()
        .find(|h| get_str(h, "name") == "loop.values")
        .expect("histogram summary");
    assert_eq!(get_u64(h, "count"), 10);
    assert_eq!(get_u64(h, "max"), 900);
    assert!(get_u64(h, "p50") >= 300 && get_u64(h, "p50") <= 500);
}

#[test]
fn histogram_percentiles_track_known_distributions() {
    // Uniform 1..=10_000: quantiles sit at q * N within bucket error.
    let mut h = Histogram::new();
    for v in 1..=10_000u64 {
        h.record(v);
    }
    for (q, want) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
        let got = h.percentile(q) as f64;
        let rel = (got - want).abs() / want;
        assert!(rel <= 0.04, "uniform p{q}: got {got}, want {want} (rel {rel})");
    }
    assert_eq!(h.percentile(1.0), 10_000);

    // Two-point mass: 90% at 10, 10% at 1000 — p50 exact, p95/p99 at
    // the heavy tail value.
    let mut h = Histogram::new();
    for _ in 0..900 {
        h.record(10);
    }
    for _ in 0..100 {
        h.record(1000);
    }
    assert_eq!(h.percentile(0.5), 10);
    for q in [0.95, 0.99] {
        let got = h.percentile(q) as f64;
        assert!((got - 1000.0).abs() / 1000.0 <= 0.04, "p{q} = {got}");
    }
}

#[test]
fn manifest_emits_once_then_updates() {
    let lines = capture(|| {
        telemetry::manifest(&[("a", telemetry::Value::Int(1))]);
        telemetry::manifest(&[("b", telemetry::Value::Int(2))]);
    });
    let events = parse(&lines);
    let manifests = events_of(&events, "run_manifest");
    assert_eq!(manifests.len(), 1);
    let m = manifests[0];
    assert!(!get_str(m, "run_id").is_empty());
    assert!(!get_str(m, "git_sha").is_empty());
    assert!(get_u64(m, "clock_origin_unix_ms") > 0);
    let updates = events_of(&events, "run_manifest_update");
    assert_eq!(updates.len(), 1);
    assert_eq!(get_str(updates[0], "run_id"), get_str(m, "run_id"));
    assert_eq!(get_u64(updates[0].get("fields").unwrap(), "b"), 2);
}

#[test]
fn chrome_trace_is_valid_json_with_complete_events() {
    let dir = std::env::temp_dir().join(format!("raal_trace_test_{}", std::process::id()));
    let path = dir.join("trace.json");
    let _lines = capture_with_trace(&path, || {
        let _outer = telemetry::span("job");
        let _inner = telemetry::span("stage");
    });
    let text = std::fs::read_to_string(&path).expect("trace written");
    let v: Value = serde_json::from_str(&text).expect("trace parses as JSON");
    let Some(Value::Array(events)) = v.get("traceEvents") else {
        panic!("no traceEvents array");
    };
    let slices: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph") == Some(&Value::Str("X".into())))
        .collect();
    assert_eq!(slices.len(), 2);
    let names: Vec<&str> = slices.iter().map(|s| get_str(s, "name")).collect();
    assert!(names.contains(&"job") && names.contains(&"stage"));
    for s in slices {
        assert!(s.get("ts").is_some() && s.get("dur").is_some() && s.get("tid").is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kernel_spans_aggregate_without_per_call_events() {
    let lines = capture(|| {
        for _ in 0..50 {
            let _k = telemetry::kernel_span("nn.matmul");
        }
    });
    let events = parse(&lines);
    assert!(events_of(&events, "span").is_empty(), "kernel spans emit no span lines");
    let hists = events_of(&events, "histogram");
    let h = hists
        .iter()
        .find(|h| get_str(h, "name") == "nn.matmul_ns")
        .expect("kernel histogram");
    assert_eq!(get_u64(h, "count"), 50);
}

#[test]
fn spans_from_worker_threads_carry_distinct_tids() {
    let lines = capture(|| {
        let _main = telemetry::span("main");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _w = telemetry::span("worker");
                });
            }
        });
    });
    let events = parse(&lines);
    let spans = events_of(&events, "span");
    let worker_tids: Vec<u64> = spans
        .iter()
        .filter(|s| get_str(s, "name") == "worker")
        .map(|s| get_u64(s, "tid"))
        .collect();
    assert_eq!(worker_tids.len(), 2);
    assert_ne!(worker_tids[0], worker_tids[1]);
    // Worker spans start their own stacks.
    for s in spans.iter().filter(|s| get_str(s, "name") == "worker") {
        assert_eq!(get_u64(s, "depth"), 0);
    }
}
