//! Model-check suite for the telemetry sink's enable/disable handoff.
//! Compiled only under `RUSTFLAGS="--cfg raal_model_check"`, where the
//! `raal_sync` primitives these scenarios are built on route through the
//! deterministic schedule explorer.
//!
//! The protocol under test is the one `telemetry` itself follows (see
//! `testing::capture_inner` and the `enabled()` fast path): the sink is
//! installed under the state mutex *before* the `ENABLED` flag is
//! published, and readers that observe the flag re-check the sink under
//! the same mutex. The tests prove the handoff is never torn in any
//! bounded interleaving — and that the checker catches the torn variant
//! when the publication order is deliberately inverted.
#![cfg(raal_model_check)]

use raal_sync::atomic::{AtomicBool, Ordering};
use raal_sync::model::{check, explore, Config, FailureKind};
use raal_sync::sync::Mutex;
use raal_sync::thread;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        max_preemptions: 2,
        max_schedules: 200_000,
        max_steps: 10_000,
    }
}

/// The correct publication order — install the sink under the lock,
/// then store the flag — means a reader that saw `enabled == true` can
/// never find the sink missing. Explored across every interleaving.
#[test]
fn enable_handoff_is_never_torn() {
    explore("telemetry-enable-handoff", cfg(), || {
        let enabled = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(Mutex::new(None::<u32>));
        let (e2, s2) = (enabled.clone(), sink.clone());
        let writer = thread::spawn(move || {
            *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(7);
            e2.store(true, Ordering::Release);
        });
        if enabled.load(Ordering::Acquire) {
            let g = sink.lock().unwrap_or_else(|e| e.into_inner());
            assert!(g.is_some(), "enabled observed before the sink install: torn handoff");
        }
        writer.join().unwrap();
    });
}

/// Negative control: publishing the flag *before* installing the sink
/// is the torn handoff. The checker must find the interleaving where a
/// reader slips between the two writes, and report it as a panic with a
/// replayable seed.
#[test]
fn inverted_publication_order_is_caught() {
    let failure = check(cfg(), || {
        let enabled = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(Mutex::new(None::<u32>));
        let (e2, s2) = (enabled.clone(), sink.clone());
        let writer = thread::spawn(move || {
            e2.store(true, Ordering::Release); // published too early
            *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(7);
        });
        if enabled.load(Ordering::Acquire) {
            let g = sink.lock().unwrap_or_else(|e| e.into_inner());
            assert!(g.is_some(), "torn handoff");
        }
        writer.join().unwrap();
    })
    .expect_err("the torn interleaving must be found");
    assert!(matches!(failure.kind, FailureKind::Panic(_)), "unexpected failure: {failure}");
    assert!(failure.seed.starts_with("mc1:"));
}

/// The registry's headline guarantee: a [`telemetry::registry::Registry`]
/// snapshot is one lock acquisition, so ordering invariants the writers
/// maintain survive into the snapshot. The writer increments `a` before
/// `b` in separate registry calls and pairs a gauge with a counter; no
/// interleaving may produce a snapshot with `b > a` or a gauge that ran
/// ahead of its counter.
#[test]
fn metrics_snapshot_is_never_torn() {
    use telemetry::registry::Registry;
    explore("registry-snapshot-not-torn", cfg(), || {
        let reg = Arc::new(Registry::new());
        let r2 = reg.clone();
        let writer = thread::spawn(move || {
            for _ in 0..2 {
                // Protocol: `a` always leads `b`, and the paired gauge
                // is published only after its counter.
                r2.counter_add("a", 1);
                r2.counter_add("b", 1);
                r2.counter_add("done", 1);
                r2.gauge_set("done.gauge", 1.0);
            }
        });
        let snap = reg.snapshot_at(0);
        let a = snap.counters.get("a").copied().unwrap_or(0);
        let b = snap.counters.get("b").copied().unwrap_or(0);
        assert!(a >= b, "snapshot tore the a-then-b ordering: a={a} b={b}");
        if snap.gauges.contains_key("done.gauge") {
            assert!(
                snap.counters.get("done").copied().unwrap_or(0) >= 1,
                "gauge published before its counter"
            );
        }
        writer.join().unwrap();
        let final_snap = reg.snapshot_at(0);
        assert_eq!(final_snap.counters["a"], 2);
        assert_eq!(final_snap.counters["b"], 2);
    });
}

/// Negative control for the snapshot guarantee: reading `a` and `b` in
/// *separate* lock acquisitions (two single-metric snapshots) is the
/// torn pattern the one-shot snapshot exists to prevent — the checker
/// must find the interleaving where the writer slips between the two
/// reads.
#[test]
fn split_reads_are_caught_as_torn() {
    use telemetry::registry::Registry;
    let failure = check(cfg(), || {
        let reg = Arc::new(Registry::new());
        let r2 = reg.clone();
        let writer = thread::spawn(move || {
            r2.counter_add("a", 1);
            r2.counter_add("b", 1);
        });
        // Torn read: b from a later state than a.
        let a = reg.snapshot_at(0).counters.get("a").copied().unwrap_or(0);
        let b = reg.snapshot_at(0).counters.get("b").copied().unwrap_or(0);
        assert!(a >= b, "torn read: a={a} b={b}");
        writer.join().unwrap();
    })
    .expect_err("the torn interleaving must be found");
    assert!(matches!(failure.kind, FailureKind::Panic(_)), "unexpected failure: {failure}");
    assert!(failure.seed.starts_with("mc1:"));
}

/// Concurrent histogram writers against one windowed registry metric:
/// no interleaving may lose an observation or deadlock, and the final
/// snapshot agrees with the number of records made.
#[test]
fn concurrent_observers_never_lose_samples() {
    use telemetry::registry::Registry;
    explore("registry-concurrent-observe", cfg(), || {
        let reg = Arc::new(Registry::new());
        let (r1, r2) = (reg.clone(), reg.clone());
        let t1 = thread::spawn(move || {
            r1.observe_at("lat", 0, 10);
            r1.observe_at("lat", 1, 20);
        });
        let t2 = thread::spawn(move || {
            r2.observe_at("lat", 2, 30);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let snap = reg.snapshot_at(2);
        assert_eq!(snap.hists["lat"].all.count, 3, "an observation was lost");
        assert_eq!(snap.hists["lat"].recent.count, 3);
    });
}

/// Disable-and-teardown, as `capture_inner` runs it: the writer clears
/// the flag and then removes the sink under the lock, while a reader
/// follows the emit pattern — flag check, then a lock-guarded `if let`
/// that tolerates a missing sink. No interleaving may deadlock or
/// observe partially-torn-down state it isn't written to tolerate.
#[test]
fn disable_teardown_never_deadlocks() {
    explore("telemetry-disable-teardown", cfg(), || {
        let enabled = Arc::new(AtomicBool::new(true));
        let sink = Arc::new(Mutex::new(Some(7u32)));
        let (e2, s2) = (enabled.clone(), sink.clone());
        let writer = thread::spawn(move || {
            e2.store(false, Ordering::Release);
            s2.lock().unwrap_or_else(|e| e.into_inner()).take();
        });
        if enabled.load(Ordering::Acquire) {
            // The emit path: the sink may already be gone — that must
            // degrade to a dropped line, never a panic.
            if let Some(v) = *sink.lock().unwrap_or_else(|e| e.into_inner()) {
                assert_eq!(v, 7);
            }
        }
        writer.join().unwrap();
    });
}
