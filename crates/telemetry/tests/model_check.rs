//! Model-check suite for the telemetry sink's enable/disable handoff.
//! Compiled only under `RUSTFLAGS="--cfg raal_model_check"`, where the
//! `raal_sync` primitives these scenarios are built on route through the
//! deterministic schedule explorer.
//!
//! The protocol under test is the one `telemetry` itself follows (see
//! `testing::capture_inner` and the `enabled()` fast path): the sink is
//! installed under the state mutex *before* the `ENABLED` flag is
//! published, and readers that observe the flag re-check the sink under
//! the same mutex. The tests prove the handoff is never torn in any
//! bounded interleaving — and that the checker catches the torn variant
//! when the publication order is deliberately inverted.
#![cfg(raal_model_check)]

use raal_sync::atomic::{AtomicBool, Ordering};
use raal_sync::model::{check, explore, Config, FailureKind};
use raal_sync::sync::Mutex;
use raal_sync::thread;
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        max_preemptions: 2,
        max_schedules: 200_000,
        max_steps: 10_000,
    }
}

/// The correct publication order — install the sink under the lock,
/// then store the flag — means a reader that saw `enabled == true` can
/// never find the sink missing. Explored across every interleaving.
#[test]
fn enable_handoff_is_never_torn() {
    explore("telemetry-enable-handoff", cfg(), || {
        let enabled = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(Mutex::new(None::<u32>));
        let (e2, s2) = (enabled.clone(), sink.clone());
        let writer = thread::spawn(move || {
            *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(7);
            e2.store(true, Ordering::Release);
        });
        if enabled.load(Ordering::Acquire) {
            let g = sink.lock().unwrap_or_else(|e| e.into_inner());
            assert!(g.is_some(), "enabled observed before the sink install: torn handoff");
        }
        writer.join().unwrap();
    });
}

/// Negative control: publishing the flag *before* installing the sink
/// is the torn handoff. The checker must find the interleaving where a
/// reader slips between the two writes, and report it as a panic with a
/// replayable seed.
#[test]
fn inverted_publication_order_is_caught() {
    let failure = check(cfg(), || {
        let enabled = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(Mutex::new(None::<u32>));
        let (e2, s2) = (enabled.clone(), sink.clone());
        let writer = thread::spawn(move || {
            e2.store(true, Ordering::Release); // published too early
            *s2.lock().unwrap_or_else(|e| e.into_inner()) = Some(7);
        });
        if enabled.load(Ordering::Acquire) {
            let g = sink.lock().unwrap_or_else(|e| e.into_inner());
            assert!(g.is_some(), "torn handoff");
        }
        writer.join().unwrap();
    })
    .expect_err("the torn interleaving must be found");
    assert!(matches!(failure.kind, FailureKind::Panic(_)), "unexpected failure: {failure}");
    assert!(failure.seed.starts_with("mc1:"));
}

/// Disable-and-teardown, as `capture_inner` runs it: the writer clears
/// the flag and then removes the sink under the lock, while a reader
/// follows the emit pattern — flag check, then a lock-guarded `if let`
/// that tolerates a missing sink. No interleaving may deadlock or
/// observe partially-torn-down state it isn't written to tolerate.
#[test]
fn disable_teardown_never_deadlocks() {
    explore("telemetry-disable-teardown", cfg(), || {
        let enabled = Arc::new(AtomicBool::new(true));
        let sink = Arc::new(Mutex::new(Some(7u32)));
        let (e2, s2) = (enabled.clone(), sink.clone());
        let writer = thread::spawn(move || {
            e2.store(false, Ordering::Release);
            s2.lock().unwrap_or_else(|e| e.into_inner()).take();
        });
        if enabled.load(Ordering::Acquire) {
            // The emit path: the sink may already be gone — that must
            // degrade to a dropped line, never a panic.
            if let Some(v) = *sink.lock().unwrap_or_else(|e| e.into_inner()) {
                assert_eq!(v, 7);
            }
        }
        writer.join().unwrap();
    });
}
