//! Resource-impact analysis (the paper's Sec. III, interactively).
//!
//! Takes the four representative IMDB queries, sweeps executor memory and
//! executor count, and prints how each candidate plan's simulated time
//! responds — demonstrating that more resources are not monotonically
//! better and that the optimal plan depends on the allocation.
//!
//! Run with: `cargo run --release --example resource_sweep`

use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, paper_section3_queries, ImdbConfig};

fn main() {
    let data = generate(&ImdbConfig { title_rows: 2000, seed: 3 });
    let scale = data.simulated_scale();
    let queries = paper_section3_queries(&data);
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions { max_plans: 3, ..PlannerOptions::scaled_to(scale) },
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );

    // Memory sweep at fixed parallelism.
    let (name, sql) = &queries[3];
    println!("query ({name}): {sql}\n");
    let plans = engine.plan_candidates(sql).expect("plans");
    let execs: Vec<_> = plans.iter().map(|p| engine.execute_plan(p).expect("runs")).collect();

    println!("memory sweep (2 executors x 2 cores):");
    print!("{:>8}", "mem(GB)");
    for i in 0..plans.len() {
        print!("{:>11}", format!("plan{}", i + 1));
    }
    println!();
    for mem in 1..=8 {
        let res = ResourceConfig {
            executors: 2,
            cores_per_executor: 2,
            memory_per_executor_gb: mem as f64,
            network_throughput_mbps: 120.0,
            disk_throughput_mbps: 200.0,
        };
        print!("{mem:>8}");
        for (i, plan) in plans.iter().enumerate() {
            let t = engine.simulator().simulate(plan, &execs[i].metrics, &res, 5);
            print!("{t:>11.2}");
        }
        println!();
    }

    println!("\nexecutor sweep (2 cores x 4 GB each):");
    print!("{:>8}", "execs");
    for i in 0..plans.len() {
        print!("{:>11}", format!("plan{}", i + 1));
    }
    println!();
    for executors in [1usize, 2, 3, 4, 6, 8] {
        let res = ResourceConfig {
            executors,
            cores_per_executor: 2,
            memory_per_executor_gb: 4.0,
            network_throughput_mbps: 120.0,
            disk_throughput_mbps: 200.0,
        };
        print!("{executors:>8}");
        for (i, plan) in plans.iter().enumerate() {
            let t = engine.simulator().simulate(plan, &execs[i].metrics, &res, 5);
            print!("{t:>11.2}");
        }
        println!();
    }

    println!(
        "\nDetailed breakdown for plan 1 at 2 executors x 2 cores x 1 GB \
         (note spill/GC/cache contributions):"
    );
    let res = ResourceConfig {
        executors: 2,
        cores_per_executor: 2,
        memory_per_executor_gb: 1.0,
        network_throughput_mbps: 120.0,
        disk_throughput_mbps: 200.0,
    };
    let report = engine
        .simulator()
        .simulate_report(&plans[0], &execs[0].metrics, &res, 5);
    println!("  total            {:.2}s", report.seconds);
    println!(
        "  stages           {:?}",
        report
            .stage_seconds
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("  spilled          {:.1} MB", report.spill_bytes / 1e6);
    println!("  gc time          {:.2}s", report.gc_seconds);
    println!("  page-cache hit   {:.0}%", report.cache_hit * 100.0);
    println!("  executors placed {}", report.effective_executors);
}
