//! What-if resource tuning with the learned cost model.
//!
//! The paper's motivation runs both ways: given resources, pick the plan —
//! but a trained resource-aware model can also answer "which allocation
//! would make this query fastest?" This example trains RAAL and then scans
//! the resource grid for a query, reporting the predicted and actual best
//! (plan, resources) combinations.
//!
//! Run with: `cargo run --release --example whatif_tuning`

use raal::dataset::{collect, CollectionConfig};
use raal::{CostModel, ModelConfig, TrainConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceGrid, SimulatorConfig};
use workloads::imdb::{generate, ImdbConfig};

fn main() {
    let data = generate(&ImdbConfig { title_rows: 1000, seed: 13 });
    let scale = data.simulated_scale();
    let graph = data.graph.clone();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );

    // Train a model on a broad resource grid.
    let collection = collect(
        &engine,
        &graph,
        &CollectionConfig {
            num_queries: 60,
            resource_states_per_plan: 4,
            ..CollectionConfig::default()
        },
    );
    let encoder = collection
        .build_encoder(&encoding::W2vConfig::default(), encoding::EncoderConfig::default());
    let samples = collection.encode(&encoder, &engine);
    println!("trained on {} records", samples.len());
    let mut model = CostModel::new(ModelConfig::raal(encoder.node_dim()));
    raal::train(&mut model, &samples, &TrainConfig { epochs: 25, ..TrainConfig::default() });

    // What-if scan for one query.
    let sql = "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
               WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND mk.keyword_id < 10";
    println!("\nquery: {sql}");
    let plans = engine.plan_candidates(sql).expect("plans");
    let execs: Vec<_> = plans.iter().map(|p| engine.execute_plan(p).expect("runs")).collect();
    let encoded: Vec<_> = plans.iter().map(|p| encoder.encode(p)).collect();

    let cluster = engine.simulator().cluster().clone();
    let grid = ResourceGrid::default().enumerate(&cluster);
    println!("scanning {} resource states x {} plans ...", grid.len(), plans.len());

    // The plan-dependent prefix of the network (LSTM + node attention)
    // is resource independent, so compute it once per plan and price
    // every grid point through the cached context — only the resource
    // attention and head run per configuration.
    let contexts: Vec<_> = encoded.iter().map(|e| model.plan_context(e)).collect();

    let mut best_pred: Option<(f64, usize, usize)> = None;
    let mut best_true: Option<(f64, usize, usize)> = None;
    for (ri, res) in grid.iter().enumerate() {
        let features = res.feature_vector(&cluster);
        for (pi, plan) in plans.iter().enumerate() {
            let pred = model.predict_with_context(&contexts[pi], &features);
            if best_pred.is_none() || pred < best_pred.unwrap().0 {
                best_pred = Some((pred, pi, ri));
            }
            let actual = engine.simulator().simulate(plan, &execs[pi].metrics, res, 11);
            if best_true.is_none() || actual < best_true.unwrap().0 {
                best_true = Some((actual, pi, ri));
            }
        }
    }
    let describe = |ri: usize| {
        let r = &grid[ri];
        format!(
            "{} executors x {} cores x {} GB",
            r.executors, r.cores_per_executor, r.memory_per_executor_gb
        )
    };
    let (pred_s, pred_plan, pred_res) = best_pred.expect("grid non-empty");
    let (true_s, true_plan, true_res) = best_true.expect("grid non-empty");
    println!(
        "\nmodel recommends : plan {} on {} (predicted {:.2}s)",
        pred_plan,
        describe(pred_res),
        pred_s
    );
    let rec_actual = engine.simulator().simulate(
        &plans[pred_plan],
        &execs[pred_plan].metrics,
        &grid[pred_res],
        11,
    );
    println!("               -> actually {rec_actual:.2}s on the simulator");
    println!(
        "true optimum     : plan {} on {} ({:.2}s)",
        true_plan,
        describe(true_res),
        true_s
    );
    println!(
        "regret           : {:.1}% above the optimum",
        (rec_actual / true_s - 1.0) * 100.0
    );
}
