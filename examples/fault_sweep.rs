//! Fault sweep: how injected failures pull real(istic) runtimes away
//! from a model trained on a healthy cluster — and how degraded-mode
//! serving keeps answering when the model itself fails.
//!
//! 1. generate a small IMDB-like dataset and train RAAL on *fault-free*
//!    observations (the usual training regime);
//! 2. sweep `FaultPlan::chaos` intensities and compare the model's
//!    (fault-blind) predictions against fault-injected simulations —
//!    the growing divergence is the optimism gap a healthy-cluster
//!    model carries into a degraded cluster;
//! 3. corrupt a checkpoint on purpose and serve through
//!    [`raal::serving::ServingModel`]: predictions degrade to the GPSJ
//!    analytical baseline instead of panicking;
//! 4. feed the model's predictions and the simulator's (fault-injected)
//!    ground truth into [`telemetry::QualityMonitor`]: the Page-Hinkley
//!    detector stays silent on healthy traffic and raises `drift.alarm`
//!    once faults shift the q-error stream.
//!
//! Run with: `cargo run --release --example fault_sweep`

use baselines::gpsj::{GpsjModel, GpsjParams};
use raal::dataset::{collect, CollectionConfig};
use raal::persist::ModelBundle;
use raal::serving::{PredictionSource, ServingConfig, ServingModel};
use raal::{CostModel, ModelConfig, TrainConfig};
use sparksim::fault::FaultPlan;
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, ImdbConfig};

fn main() {
    telemetry::init_from_env();
    telemetry::manifest(&[("example", telemetry::Value::Str("fault_sweep".into()))]);

    // --- 1. Data + a model trained on a healthy cluster.
    let data = generate(&ImdbConfig { title_rows: 800, seed: 7 });
    let scale = data.simulated_scale();
    let graph = data.graph.clone();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );
    let sql = "SELECT COUNT(*) FROM title t, movie_keyword mk \
               WHERE t.id = mk.movie_id AND t.production_year > 1990";
    let plans = engine.plan_candidates(sql).expect("valid query");
    let plan = &plans[0];
    let exec = engine.execute_plan(plan).expect("runs");
    let resources = ResourceConfig::default_for(engine.simulator().cluster());

    let cfg = CollectionConfig {
        num_queries: 20,
        resource_states_per_plan: 2,
        runs_per_observation: 1,
        ..CollectionConfig::default()
    };
    let collection = collect(&engine, &graph, &cfg);
    let encoder = collection.build_encoder(
        &encoding::W2vConfig { dim: 16, epochs: 2, ..Default::default() },
        encoding::EncoderConfig::default(),
    );
    let samples = collection.encode(&encoder, &engine);
    let mut model = CostModel::new(ModelConfig::raal(encoder.node_dim()));
    let history =
        raal::train(&mut model, &samples, &TrainConfig { epochs: 8, ..TrainConfig::default() });
    println!(
        "trained RAAL on {} fault-free records ({:.1}s, final loss {:.4})",
        samples.len(),
        history.train_seconds,
        history.final_loss()
    );

    // --- 2. Sweep fault intensity: predicted vs fault-injected time.
    let features = resources.feature_vector(engine.simulator().cluster());
    let predicted = model.predict_seconds(&encoder.encode(plan), &features);
    let clean: f64 = (0..10u64)
        .map(|s| engine.resimulate(plan, &exec, &resources, s).seconds)
        .sum::<f64>()
        / 10.0;
    println!("\nquery: {sql}");
    println!("model prediction (trained fault-free): {predicted:.2}s");
    println!("fault-free simulated mean:             {clean:.2}s\n");
    println!(
        "{:>10} {:>12} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "intensity", "simulated(s)", "vs clean", "execLost", "retries", "specul.", "aborts"
    );
    for intensity in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let mut total = 0.0f64;
        let mut survived = 0u32;
        let mut aborts = 0u32;
        let (mut lost, mut retries, mut spec) = (0u32, 0u32, 0u32);
        for run_seed in 0..10u64 {
            let faults = FaultPlan::chaos(run_seed, intensity);
            match engine.resimulate_with_faults(plan, &exec, &resources, run_seed, &faults) {
                Ok(fr) => {
                    total += fr.report.seconds;
                    survived += 1;
                    lost += fr.faults.executor_failures;
                    retries += fr.faults.task_retries;
                    spec += fr.faults.speculative_launches;
                }
                Err(_) => aborts += 1,
            }
        }
        let mean = if survived > 0 {
            total / f64::from(survived)
        } else {
            f64::NAN
        };
        println!(
            "{:>10.2} {:>12.2} {:>9.0}% {:>9} {:>9} {:>9} {:>8}",
            intensity,
            mean,
            (mean / clean - 1.0) * 100.0,
            lost,
            retries,
            spec,
            aborts
        );
    }
    println!(
        "\nEverything above the intensity-0 row is recovery cost — backoff, \
         re-runs, speculation, stage re-attempts — that a model trained on a \
         healthy cluster (prediction above) never saw."
    );

    // --- 3. Degraded-mode serving: a corrupt checkpoint falls back to GPSJ.
    let dir = std::env::temp_dir().join("raal_fault_sweep");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let good = dir.join("model.json");
    ModelBundle::new(model, &encoder).save(&good).expect("save");
    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, "{\"model\": \"bit rot\"}").expect("write");

    let gpsj = GpsjModel::new(GpsjParams { data_scale: scale, ..GpsjParams::default() });
    println!("\nserving through ServingModel (GPSJ analytical fallback):");
    for (label, path) in [("intact checkpoint", &good), ("corrupt checkpoint", &corrupt)] {
        let mut serving =
            ServingModel::from_checkpoint(path, Box::new(gpsj.clone()), ServingConfig::default());
        let pred = serving.predict(plan, &resources);
        let source = match pred.source {
            PredictionSource::Model => "deep model",
            PredictionSource::Fallback(reason) => match reason {
                raal::serving::FallbackReason::Checkpoint => "GPSJ (checkpoint invalid)",
                _ => "GPSJ (other)",
            },
        };
        println!("  {label:<18} -> {:.2}s via {source}", pred.seconds);
    }

    // --- 4. Online drift monitoring: the same optimism gap, caught live.
    // The monitor sees (predicted, observed) pairs exactly as a serving
    // deployment would; the simulator supplies the ground truth.
    println!("\nonline prediction-quality monitor (Page-Hinkley on q-error):");
    let mut monitor = telemetry::QualityMonitor::new(telemetry::MonitorConfig::default());
    let class = "agg_join";
    for seed in 0..40u64 {
        let observed = engine.resimulate(plan, &exec, &resources, seed).seconds;
        if let Some(alarm) = monitor.record(class, predicted, observed) {
            println!("  unexpected alarm on healthy traffic: {alarm:?}");
        }
    }
    let healthy = monitor.stats(class).expect("stats after healthy phase");
    println!(
        "  healthy phase:  {} samples, MAE {:.3}s, mean q-error {:.3}, drifted: {}",
        healthy.samples, healthy.mae, healthy.q_error_mean, healthy.drifted
    );
    assert!(!healthy.drifted, "monitor must stay silent on stationary traffic");

    let mut alarm_at = None;
    for seed in 40..120u64 {
        let faults = FaultPlan::chaos(seed, 0.4);
        let observed = match engine.resimulate_with_faults(plan, &exec, &resources, seed, &faults) {
            Ok(fr) => fr.report.seconds,
            Err(_) => continue, // aborted run: nothing was observed
        };
        if let Some(alarm) = monitor.record(class, predicted, observed) {
            println!(
                "  drift.alarm:    sample {} of class '{}', q-error {:.2}, PH statistic {:.2}",
                alarm.samples, alarm.class, alarm.q_error, alarm.ph_statistic
            );
            alarm_at = Some(alarm.samples);
            break;
        }
    }
    let degraded = monitor.stats(class).expect("stats after fault phase");
    println!(
        "  fault phase:    MAE {:.3}s, mean q-error {:.3}, drifted: {}",
        degraded.mae, degraded.q_error_mean, degraded.drifted
    );
    assert!(
        alarm_at.is_some() && degraded.drifted,
        "chaos faults at intensity 0.4 must trip the drift detector"
    );
    println!(
        "  the fault-blind model drifted within {} observations of the cluster \
         degrading — the alarm is in the JSONL log and the monitor.drift.{class} \
         gauge (see RAAL_METRICS_OUT).",
        alarm_at.unwrap_or(0) - healthy.samples
    );

    telemetry::shutdown();
}
