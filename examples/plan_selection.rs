//! Plan selection with a trained, checkpointed cost model — the paper's
//! Fig. 1 scenario as an application.
//!
//! Trains RAAL on an IMDB-like workload, saves the model bundle to disk,
//! reloads it (as a query optimizer would at startup), and uses it to pick
//! execution plans for fresh queries under the currently allocated
//! resources.
//!
//! Run with: `cargo run --release --example plan_selection`

use raal::dataset::{collect, CollectionConfig};
use raal::selection::evaluate_selection;
use raal::{CostModel, ModelBundle, ModelConfig, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, ImdbConfig};
use workloads::querygen::{generate_queries, QueryGenConfig};

fn main() {
    let data = generate(&ImdbConfig { title_rows: 1000, seed: 21 });
    let scale = data.simulated_scale();
    let graph = data.graph.clone();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );

    // Train.
    let collection = collect(
        &engine,
        &graph,
        &CollectionConfig { num_queries: 60, ..CollectionConfig::default() },
    );
    let encoder = collection
        .build_encoder(&encoding::W2vConfig::default(), encoding::EncoderConfig::default());
    let samples = collection.encode(&encoder, &engine);
    let mut model = CostModel::new(ModelConfig::raal(encoder.node_dim()));
    raal::train(&mut model, &samples, &TrainConfig { epochs: 20, ..TrainConfig::default() });

    // Checkpoint and reload, as a long-running optimizer process would.
    let path = std::env::temp_dir().join("raal_example_bundle.json");
    ModelBundle::new(model, &encoder).save(&path).expect("save bundle");
    let bundle = ModelBundle::load(&path).expect("load bundle");
    let encoder = bundle.encoder();
    println!("checkpoint round-tripped through {}", path.display());

    // Select plans for fresh queries under two different resource states.
    let mut rng = StdRng::seed_from_u64(99);
    let queries = generate_queries(
        &graph,
        &QueryGenConfig { max_joins: 2, ..QueryGenConfig::default() },
        6,
        &mut rng,
    );
    for res in [
        ResourceConfig {
            executors: 2,
            cores_per_executor: 2,
            memory_per_executor_gb: 2.0,
            network_throughput_mbps: 120.0,
            disk_throughput_mbps: 200.0,
        },
        ResourceConfig {
            executors: 6,
            cores_per_executor: 2,
            memory_per_executor_gb: 6.0,
            network_throughput_mbps: 120.0,
            disk_throughput_mbps: 200.0,
        },
    ] {
        println!(
            "\n--- resources: {} executors x {} cores x {} GB ---",
            res.executors, res.cores_per_executor, res.memory_per_executor_gb
        );
        for (i, sql) in queries.iter().enumerate() {
            match evaluate_selection(&engine, &bundle.model, &encoder, sql, &res, 7) {
                Ok(outcome) => println!(
                    "Q{}: default {:.2}s -> selected {:.2}s ({}, {:.2}x)",
                    i + 1,
                    outcome.default_seconds,
                    outcome.chosen_seconds,
                    if outcome.optimal() {
                        "optimal"
                    } else {
                        "suboptimal"
                    },
                    outcome.speedup()
                ),
                Err(e) => println!("Q{}: skipped ({e})", i + 1),
            }
        }
    }
}
