//! Quickstart: the full RAAL pipeline in one file.
//!
//! 1. generate a small IMDB-like dataset,
//! 2. plan a query (several candidate physical plans),
//! 3. execute it and simulate its time under chosen resources,
//! 4. collect a small training set, train RAAL,
//! 5. predict the cost of each candidate plan.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Set `RAAL_TELEMETRY=1` (or `=path.jsonl`) to stream a structured
//! event log of the whole pipeline, and `RAAL_TRACE_OUT=trace.json` for
//! a Chrome `about://tracing` flamegraph — see README "Telemetry".

use raal::dataset::{collect, CollectionConfig};
use raal::{CostModel, ModelConfig, TrainConfig};
use sparksim::plan::planner::PlannerOptions;
use sparksim::{ClusterConfig, Engine, ResourceConfig, SimulatorConfig};
use workloads::imdb::{generate, ImdbConfig};

fn main() {
    telemetry::init_from_env();
    telemetry::manifest(&[("example", telemetry::Value::Str("quickstart".into()))]);
    // --- 1. Data: a scaled-down IMDB standing in for the paper's 7.2 GB.
    let data = generate(&ImdbConfig { title_rows: 800, seed: 7 });
    let scale = data.simulated_scale();
    println!(
        "generated {} tables, {:.1} MB in memory, simulating a {:.0} GB deployment",
        data.catalog.len(),
        data.catalog.total_bytes() as f64 / 1e6,
        data.catalog.total_bytes() as f64 * scale / 1e9
    );
    let graph = data.graph.clone();
    let engine = Engine::with_options(
        data.catalog,
        PlannerOptions::scaled_to(scale),
        ClusterConfig::default(),
        SimulatorConfig { data_scale: scale, ..SimulatorConfig::default() },
    );

    // --- 2. Plan a query: Catalyst-style candidate enumeration.
    let sql = "SELECT COUNT(*) FROM title t, movie_keyword mk \
               WHERE t.id = mk.movie_id AND t.production_year > 1990";
    let plans = engine.plan_candidates(sql).expect("valid query");
    println!("\nquery: {sql}");
    println!("{} candidate plans; default plan:", plans.len());
    print!("{}", plans[0].explain());

    // --- 3. Execute + simulate under resources.
    let resources = ResourceConfig::default_for(engine.simulator().cluster());
    for (i, plan) in plans.iter().enumerate() {
        let run = engine.observe(plan, &resources, 42).expect("runs");
        println!(
            "plan {} -> result {:?}, simulated {:.2}s",
            i,
            run.result.scalar_i64(),
            run.seconds()
        );
    }

    // --- 4. Collect a training set and train RAAL.
    let cfg = CollectionConfig {
        num_queries: 25,
        resource_states_per_plan: 2,
        runs_per_observation: 1,
        ..CollectionConfig::default()
    };
    let collection = collect(&engine, &graph, &cfg);
    let encoder = collection.build_encoder(
        &encoding::W2vConfig { dim: 16, epochs: 2, ..Default::default() },
        encoding::EncoderConfig::default(),
    );
    let samples = collection.encode(&encoder, &engine);
    println!("\ncollected {} training records", samples.len());
    let mut model = CostModel::new(ModelConfig::raal(encoder.node_dim()));
    let history =
        raal::train(&mut model, &samples, &TrainConfig { epochs: 8, ..TrainConfig::default() });
    println!(
        "trained RAAL ({} weights) in {:.1}s, final loss {:.4}",
        model.num_weights(),
        history.train_seconds,
        history.final_loss()
    );

    // --- 5. Score the candidate plans with the learned model.
    let features = resources.feature_vector(engine.simulator().cluster());
    println!("\nmodel predictions under 2 executors x 2 cores x 4 GB:");
    for (i, plan) in plans.iter().enumerate() {
        let pred = model.predict_seconds(&encoder.encode(plan), &features);
        println!("  plan {i}: predicted {pred:.2}s");
    }

    // Flush counters/histograms and the Chrome trace, if enabled.
    telemetry::shutdown();
}
