#!/bin/bash
set -u
# Wait for the experiment suite.
until grep -q "ALL_EXPERIMENTS_DONE" results/logs/driver.log 2>/dev/null; do sleep 15; done
echo "[finalize] suite done; rerunning stale tables with final code"
for b in tab5_vs_tlstm tab6_vs_gpsj; do
  cargo run --release -p bench --bin "$b" 2>&1 | tee "results/logs/$b.log" | tail -3
done
python3 scripts/fill_experiments.py
echo "[finalize] running workspace tests"
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | tail -5
echo "[finalize] running benches"
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -5
echo "FINALIZE_DONE"
