//! # raal-repro — workspace façade
//!
//! Umbrella crate for the reproduction of *"A Resource-Aware Deep Cost
//! Model for Big Data Query Processing"* (ICDE 2022). It re-exports the
//! member crates so examples and integration tests can reach everything
//! through one dependency; the substance lives in:
//!
//! * [`nn`] — autograd + layers,
//! * [`sparksim`] — the Spark-SQL-like engine and time simulator,
//! * [`workloads`] — IMDB/TPC-H-like datasets and query generation,
//! * [`encoding`] — plan/resource feature encoders,
//! * [`raal`] — the deep cost model itself,
//! * [`baselines`] — TLSTM, GPSJ and the micro-model,
//! * [`telemetry`] — structured spans, metrics and Spark-style event logs.

pub use baselines;
pub use encoding;
pub use nn;
pub use raal;
pub use sparksim;
pub use telemetry;
pub use workloads;
