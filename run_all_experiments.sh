#!/bin/bash
# Regenerates every table and figure of the paper (reduced scale by
# default; pass --full for paper-scale runs).
set -u
EXTRA="${1:-}"
BINS="fig2_memory_impact fig1_plan_selection tab4_fig6_ablation tab5_vs_tlstm tab6_vs_gpsj fig7_scatter fig8_adaptability tab8_training_size tab9_inference_latency tab7_resource_attention ext_sim_ablation ext_coldstart"
for b in $BINS; do
  echo "=== running $b ==="
  cargo run --release -p bench --bin "$b" -- $EXTRA 2>&1 | tee "results/logs/$b.log" | tail -3
done
echo "ALL_EXPERIMENTS_DONE"
